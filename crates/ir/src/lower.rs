//! Lowering from the type-checked P4 program to the [`Cfg`].
//!
//! This pass performs, in one walk, the first three boxes of the paper's
//! pipeline (Fig. 3):
//!
//! 1. **Table-call expansion** (§4.1, Fig. 4/5): every `t.apply()` becomes a
//!    havoc'd abstract flow entry `pcn.<t>` with `hit`, an action selector,
//!    per-key value/mask variables and per-action data variables, plus the
//!    hit-condition branch relating entry contents to the packet.
//! 2. **Bug instrumentation**: validity checks before every header-field
//!    read/write, key-validity checks inside table expansion, bounds checks
//!    on registers and header stacks, the `egress_spec` shadow variable, and
//!    `dontCare` marking of destructive-copy no-op branches (§4.2).
//! 3. **Parser-loop unrolling**: parser states are inlined per visit
//!    context, bounded by header-stack capacities, yielding an acyclic CFG.
//!
//! Variables are flat dotted names rooted at the canonical pipeline
//! parameters: `hdr.*` (headers, with `.$valid` validity bits and `.N`
//! stack elements), `meta.*` (user metadata, zero-initialized per bmv2),
//! `standard_metadata.*`, plus `pcn.*` flow-entry variables and a few ghost
//! variables (`$egress_set`, `<stack>.$next`).

use crate::cfg::{
    Block, BlockId, BlockKind, BugInfo, BugKind, Cfg, Instr, TableActionInfo, TableKeyInfo,
    TableSite, Terminator,
};
use bf4_p4::ast::{
    ActionDecl, BinOp, Block as AstBlock, Direction, Expr, Keyset, Param, Stmt, TableDecl,
    Transition, UnOp,
};
use bf4_p4::typecheck::{switch_table_name, ControlDef, ParserDef, Program, Type};
use bf4_p4::{Error, Span};
use bf4_smt::{Sort, Term};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Which half of the V1Model pipeline to lower (§4.6: bf4 analyses ingress
/// and egress in separation).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PipelinePart {
    /// Parser followed by the ingress control (default).
    #[default]
    Ingress,
    /// The egress control alone, with fully havoc'd input state.
    Egress,
}

/// Lowering options.
#[derive(Clone, Debug)]
pub struct LowerOptions {
    /// Which pipeline part to lower.
    pub part: PipelinePart,
    /// Instrument invalid-header-access bugs.
    pub check_validity: bool,
    /// Instrument the `egress_spec`-not-set bug.
    pub check_egress_spec: bool,
    /// Instrument register/stack bounds bugs.
    pub check_bounds: bool,
    /// Mark destructive-copy no-op branches `dontCare` and instrument the
    /// destructive-copy bug.
    pub dontcare: bool,
    /// Extra parser unroll slack beyond each stack's capacity.
    pub unroll_slack: u32,
    /// Apply the §4.6 egress-spec fix: explicitly initialize
    /// `egress_spec` to the drop port at the beginning of ingress, making
    /// every path's forwarding decision defined.
    pub egress_spec_default_drop: bool,
    /// Treat a parser extract past a stack's capacity as a bug node
    /// instead of the P4-16 `error.StackOutOfBounds` → reject semantics.
    /// Off by default: such overflows are packet-dependent and cannot be
    /// controlled by any table rule.
    pub strict_parser_overflow: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            part: PipelinePart::Ingress,
            check_validity: true,
            check_egress_spec: true,
            check_bounds: true,
            dontcare: true,
            unroll_slack: 1,
            egress_spec_default_drop: false,
            strict_parser_overflow: false,
        }
    }
}

/// Result of lowering.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The acyclic CFG.
    pub cfg: Cfg,
}

/// Lower a checked program.
pub fn lower(program: &Program, options: &LowerOptions) -> Result<Lowered, Error> {
    let _sp = bf4_obs::span("ir", "lower");
    let mut lw = Lowerer::new(program, options.clone());
    lw.run()?;
    let cfg = lw.finish();
    debug_assert_eq!(cfg.validate(), Ok(()));
    Ok(Lowered { cfg })
}

/// The sort of the drop port value used when `mark_to_drop` is called.
pub const DROP_PORT: u128 = 511;

// ---------------------------------------------------------------------------

/// Resolved place of an l-value / aggregate expression.
#[derive(Clone, Debug)]
enum Place {
    /// A struct instance rooted at a canonical path (e.g. `hdr`, `meta.m`).
    Struct { type_name: String, path: String },
    /// A header instance with a static path.
    Header { type_name: String, path: String },
    /// A header stack.
    Stack {
        elem_type: String,
        size: u32,
        path: String,
    },
    /// A stack element with a dynamic index.
    HeaderDyn {
        elem_type: String,
        size: u32,
        path: String,
        index: Term,
    },
    /// A scalar variable.
    Scalar { var: Arc<str>, sort: Sort },
}

/// Everything an expression lowering produces besides the term.
#[derive(Clone, Debug, Default)]
struct Obligations {
    /// Validity bits that must hold for the access to be defined.
    validity: Vec<Arc<str>>,
    /// `(index, size, what)` bounds obligations.
    bounds: Vec<(Term, u32, String)>,
    /// Raw boolean conditions that must hold (dynamic-element validity).
    raw_checks: Vec<(Term, String)>,
}

impl Obligations {
    fn merge(&mut self, other: Obligations) {
        self.validity.extend(other.validity);
        self.bounds.extend(other.bounds);
        self.raw_checks.extend(other.raw_checks);
    }
}

/// Identifier binding during lowering.
#[derive(Clone, Debug)]
enum Binding {
    /// A place (struct/header/stack parameter or alias).
    Place(Place),
    /// A scalar program variable.
    Var(Arc<str>, Sort),
    /// A known term (action arguments, constants).
    Value(Term),
}

/// Memo key for parser-state expansion: state name plus the (header,
/// next-index) stack cursors at entry.
type ParserMemoKey = (String, Vec<(String, u32)>, Vec<(String, u32)>);

type Env = HashMap<String, Binding>;

struct Lowerer<'p> {
    program: &'p Program,
    options: LowerOptions,
    blocks: Vec<Block>,
    tables: Vec<TableSite>,
    var_sorts: HashMap<Arc<str>, Sort>,
    dontcare_marks: Vec<BlockId>,
    entry: BlockId,
    /// Jump target of `exit` statements (end of the current pipeline part).
    exit_target: BlockId,
    /// Table apply-site counter.
    site_counter: usize,
    /// Action-inline counter (for unique local names).
    inline_counter: usize,
    /// Parser unroll memo: (state, visit/stack context) → entry block.
    parser_memo: HashMap<ParserMemoKey, BlockId>,
}

impl<'p> Lowerer<'p> {
    fn new(program: &'p Program, options: LowerOptions) -> Self {
        Lowerer {
            program,
            options,
            blocks: Vec::new(),
            tables: Vec::new(),
            var_sorts: HashMap::new(),
            dontcare_marks: Vec::new(),
            entry: 0,
            exit_target: 0,
            site_counter: 0,
            inline_counter: 0,
            parser_memo: HashMap::new(),
        }
    }

    fn finish(self) -> Cfg {
        Cfg {
            blocks: self.blocks,
            entry: self.entry,
            tables: self.tables,
            var_sorts: self.var_sorts,
            dontcare_marks: self.dontcare_marks,
        }
    }

    // ---- block plumbing ----

    fn new_block(&mut self, label: impl Into<String>) -> BlockId {
        self.blocks.push(Block {
            instrs: Vec::new(),
            term: Terminator::End,
            kind: BlockKind::Normal,
            label: label.into(),
        });
        self.blocks.len() - 1
    }

    fn terminal(&mut self, kind: BlockKind, label: impl Into<String>) -> BlockId {
        let b = self.new_block(label);
        self.blocks[b].kind = kind;
        b
    }

    fn seal(&mut self, b: BlockId, term: Terminator) {
        self.blocks[b].term = term;
    }

    fn var(&mut self, name: impl Into<Arc<str>>, sort: Sort) -> Arc<str> {
        let name: Arc<str> = name.into();
        if let Some(prev) = self.var_sorts.insert(name.clone(), sort) {
            debug_assert_eq!(prev, sort, "sort clash for {name}");
        }
        name
    }

    fn assign(&mut self, b: BlockId, var: impl Into<Arc<str>>, sort: Sort, expr: Term) {
        let var = self.var(var, sort);
        self.blocks[b].instrs.push(Instr::Assign { var, sort, expr });
    }

    fn havoc(&mut self, b: BlockId, var: impl Into<Arc<str>>, sort: Sort) {
        let var = self.var(var, sort);
        self.blocks[b].instrs.push(Instr::Havoc { var, sort });
    }

    /// Split `cur` on `cond`: if false, go to a bug terminal; if true,
    /// continue in a fresh block that is returned.
    fn guard(&mut self, cur: BlockId, cond: Term, bug: BugInfo) -> BlockId {
        if cond.is_true() {
            return cur;
        }
        let ok = self.new_block(format!("ok:{}", bug.description));
        let bug_b = self.terminal(
            BlockKind::Bug(bug.clone()),
            format!("BUG:{}", bug.description),
        );
        self.seal(
            cur,
            Terminator::Branch {
                cond,
                then_to: ok,
                else_to: bug_b,
            },
        );
        ok
    }

    /// Discharge expression obligations as bug checks; returns the block
    /// where safe execution continues.
    fn discharge(
        &mut self,
        mut cur: BlockId,
        ob: &Obligations,
        line: u32,
        table: Option<usize>,
    ) -> BlockId {
        if self.options.check_validity && !ob.validity.is_empty() {
            let mut seen = HashSet::new();
            let conj = Term::and_all(
                ob.validity
                    .iter()
                    .filter(|v| seen.insert((*v).clone()))
                    .map(|v| Term::var(v.clone(), Sort::Bool))
                    .collect::<Vec<_>>(),
            );
            let what = ob
                .validity
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",");
            cur = self.guard(
                cur,
                conj,
                BugInfo {
                    kind: BugKind::InvalidHeaderAccess,
                    description: format!("access to field of invalid header [{what}]"),
                    line,
                    table,
                },
            );
        }
        if self.options.check_validity {
            for (cond, what) in &ob.raw_checks {
                cur = self.guard(
                    cur,
                    cond.clone(),
                    BugInfo {
                        kind: BugKind::InvalidHeaderAccess,
                        description: what.clone(),
                        line,
                        table,
                    },
                );
            }
        }
        if self.options.check_bounds {
            for (idx, size, what) in &ob.bounds {
                let w = idx.width();
                let cond = idx.bvult(&Term::bv(w, *size as u128));
                let kind = if what.starts_with("register") {
                    BugKind::RegisterOutOfBounds
                } else {
                    BugKind::StackOutOfBounds
                };
                cur = self.guard(
                    cur,
                    cond,
                    BugInfo {
                        kind,
                        description: format!("{what} index out of bounds (size {size})"),
                        line,
                        table,
                    },
                );
            }
        }
        cur
    }

    // ---- naming ----

    fn valid_var(&mut self, header_path: &str) -> Arc<str> {
        self.var(format!("{header_path}.$valid"), Sort::Bool)
    }

    fn field_var(&mut self, header_path: &str, field: &str, width: u32) -> Arc<str> {
        self.var(format!("{header_path}.{field}"), Sort::Bv(width))
    }

    // ---- top level ----

    fn run(&mut self) -> Result<(), Error> {
        let pl = self.program.pipeline.clone().ok_or_else(|| {
            Error::new(Span::default(), "program has no V1Switch instantiation")
        })?;
        match self.options.part {
            PipelinePart::Ingress => {
                let parser = self.program.parsers[&pl.parser].clone();
                let ingress = self.program.controls[&pl.ingress].clone();
                self.lower_ingress(&parser, &ingress)
            }
            PipelinePart::Egress => {
                let egress = self.program.controls[&pl.egress].clone();
                self.lower_egress(&egress)
            }
        }
    }

    /// All header instances reachable from the headers struct: returns
    /// `(path, header_type)` pairs (stack elements enumerated).
    fn enumerate_headers(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        // The headers struct is the type of the parser's `out` parameter /
        // ingress first parameter; find it via the pipeline ingress control.
        if let Some(pl) = &self.program.pipeline {
            if let Some(ing) = self.program.controls.get(&pl.ingress) {
                if let Some(p0) = ing.params.first() {
                    if let Ok(Type::Struct(s)) = self.program.resolve_type(&p0.ty) {
                        self.walk_struct(&s, "hdr", &mut out);
                    }
                }
            }
        }
        out
    }

    fn walk_struct(&self, type_name: &str, path: &str, out: &mut Vec<(String, String)>) {
        let Some(fields) = self.program.struct_fields(type_name) else {
            return;
        };
        for (fname, fty) in fields {
            let fpath = format!("{path}.{fname}");
            match fty {
                Type::Header(h) => out.push((fpath, h.clone())),
                Type::Struct(s) => self.walk_struct(&s, &fpath, out),
                Type::Stack(h, n) => {
                    for i in 0..n {
                        out.push((format!("{fpath}.{i}"), h.clone()));
                    }
                }
                _ => {}
            }
        }
    }

    /// Zero-initialize user metadata fields under `path` of struct type.
    fn init_metadata(&mut self, b: BlockId, type_name: &str, path: &str) {
        let Some(fields) = self.program.struct_fields(type_name) else {
            return;
        };
        for (fname, fty) in fields {
            let fpath = format!("{path}.{fname}");
            match fty {
                Type::Bit(w) => self.assign(b, fpath, Sort::Bv(w), Term::bv(w, 0)),
                Type::Bool => self.assign(b, fpath, Sort::Bool, Term::ff()),
                Type::Struct(s) => self.init_metadata(b, &s, &fpath),
                _ => {}
            }
        }
    }

    fn base_env(&self, ctrl_params: &[Param]) -> Env {
        // Canonical parameter mapping by position (V1Model convention):
        // ignoring packet_in/packet_out params, [0]=hdr, [1]=meta, [2]=sm.
        let mut env = Env::new();
        let mut idx = 0;
        for p in ctrl_params {
            let t = self.program.resolve_type(&p.ty).unwrap();
            if let Type::Struct(s) = &t {
                if s == "packet_in" || s == "packet_out" {
                    env.insert(p.name.clone(), Binding::Place(Place::Struct {
                        type_name: s.clone(),
                        path: p.name.clone(),
                    }));
                    continue;
                }
            }
            let root = match idx {
                0 => "hdr",
                1 => "meta",
                _ => "standard_metadata",
            };
            idx += 1;
            let place = match t {
                Type::Struct(s) => Place::Struct {
                    type_name: s,
                    path: root.to_string(),
                },
                Type::Header(h) => Place::Header {
                    type_name: h,
                    path: root.to_string(),
                },
                _ => continue,
            };
            env.insert(p.name.clone(), Binding::Place(place));
        }
        // constants
        for (n, (t, v)) in &self.program.consts {
            let term = match t {
                Type::Bit(w) => Term::bv(*w, *v),
                Type::Bool => Term::bool(*v != 0),
                _ => continue,
            };
            env.entry(n.clone()).or_insert(Binding::Value(term));
        }
        env
    }

    fn lower_ingress(&mut self, parser: &ParserDef, ingress: &ControlDef) -> Result<(), Error> {
        let entry = self.new_block("init");
        self.entry = entry;

        // Header validity bits start false.
        for (path, _h) in self.enumerate_headers() {
            let v = self.valid_var(&path);
            self.assign(entry, v, Sort::Bool, Term::ff());
        }
        // Stack next-counters start at zero.
        for stack in self.stack_paths() {
            self.assign(entry, format!("{stack}.$next"), Sort::Bv(32), Term::bv(32, 0));
        }
        // Standard metadata: egress_spec zero-initialized (§5.1 "Egress spec
        // not set"), the rest havoc'd inputs.
        for (f, w) in bf4_p4::typecheck::STANDARD_METADATA {
            let name = format!("standard_metadata.{f}");
            if *f == "egress_spec" {
                let init = if self.options.egress_spec_default_drop {
                    Term::bv(*w, DROP_PORT)
                } else {
                    Term::bv(*w, 0)
                };
                self.assign(entry, name, Sort::Bv(*w), init);
            } else {
                self.havoc(entry, name, Sort::Bv(*w));
            }
        }
        let egress_init = Term::bool(self.options.egress_spec_default_drop);
        self.assign(entry, "$egress_set", Sort::Bool, egress_init);
        // User metadata zero-initialized (bmv2 semantics).
        if let Some(p1) = ingress.params.get(1) {
            if let Ok(Type::Struct(s)) = self.program.resolve_type(&p1.ty) {
                self.init_metadata(entry, &s, "meta");
            }
        }

        // End of ingress: egress_spec check, then Accept.
        let accept = self.terminal(BlockKind::Accept, "accept");
        let end_of_ingress = self.new_block("end-of-ingress");
        if self.options.check_egress_spec {
            let bug = self.terminal(
                BlockKind::Bug(BugInfo {
                    kind: BugKind::EgressSpecNotSet,
                    description: "egress_spec never set by end of ingress".into(),
                    line: 0,
                    table: None,
                }),
                "BUG:egress-spec-not-set",
            );
            self.seal(
                end_of_ingress,
                Terminator::Branch {
                    cond: Term::var("$egress_set", Sort::Bool),
                    then_to: accept,
                    else_to: bug,
                },
            );
        } else {
            self.seal(end_of_ingress, Terminator::Jump(accept));
        }
        self.exit_target = end_of_ingress;

        // Ingress body.
        let env = self.base_env(&ingress.params);
        let ingress_entry = self.new_block("ingress");
        let mut env2 = env.clone();
        let mut cur = ingress_entry;
        // control-level locals
        let ctrl = ingress.clone();
        for (n, t, init) in &ctrl.locals {
            cur = self.declare_local(cur, &ctrl.name, n, t, init.as_deref2(), &mut env2, &ctrl)?;
        }
        let body_end = self.lower_stmts(&ctrl.apply.stmts, cur, &mut env2, &ctrl)?;
        self.seal(body_end, Terminator::Jump(end_of_ingress));

        // Parser.
        let _sp = bf4_obs::span("ir", "unroll");
        let reject = self.terminal(BlockKind::Reject, "reject");
        let parser_env = self.parser_env(parser);
        let start = self.lower_parser_state(
            parser,
            "start",
            &BTreeMap::new(),
            &BTreeMap::new(),
            ingress_entry,
            reject,
            &parser_env,
        )?;
        self.seal(entry, Terminator::Jump(start));
        Ok(())
    }

    fn lower_egress(&mut self, egress: &ControlDef) -> Result<(), Error> {
        let entry = self.new_block("init-egress");
        self.entry = entry;
        // Everything havoc'd: validity bits, fields, metadata.
        for (path, h) in self.enumerate_headers() {
            let v = self.valid_var(&path);
            self.havoc(entry, v, Sort::Bool);
            for (f, w) in self.program.headers[&h].clone() {
                let fv = self.field_var(&path, &f, w);
                self.havoc(entry, fv, Sort::Bv(w));
            }
        }
        for stack in self.stack_paths() {
            self.havoc(entry, format!("{stack}.$next"), Sort::Bv(32));
        }
        for (f, w) in bf4_p4::typecheck::STANDARD_METADATA {
            self.havoc(entry, format!("standard_metadata.{f}"), Sort::Bv(*w));
        }
        if let Some(p1) = egress.params.get(1) {
            if let Ok(Type::Struct(s)) = self.program.resolve_type(&p1.ty) {
                self.havoc_metadata(entry, &s, "meta");
            }
        }
        let accept = self.terminal(BlockKind::Accept, "accept");
        self.exit_target = accept;
        let mut env = self.base_env(&egress.params);
        let ctrl = egress.clone();
        let mut cur = entry;
        for (n, t, init) in &ctrl.locals {
            cur = self.declare_local(cur, &ctrl.name, n, t, init.as_deref2(), &mut env, &ctrl)?;
        }
        let end = self.lower_stmts(&ctrl.apply.stmts, cur, &mut env, &ctrl)?;
        self.seal(end, Terminator::Jump(accept));
        Ok(())
    }

    fn havoc_metadata(&mut self, b: BlockId, type_name: &str, path: &str) {
        let Some(fields) = self.program.struct_fields(type_name) else {
            return;
        };
        for (fname, fty) in fields {
            let fpath = format!("{path}.{fname}");
            match fty {
                Type::Bit(w) => self.havoc(b, fpath, Sort::Bv(w)),
                Type::Bool => self.havoc(b, fpath, Sort::Bool),
                Type::Struct(s) => self.havoc_metadata(b, &s, &fpath),
                _ => {}
            }
        }
    }

    fn stack_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(pl) = &self.program.pipeline {
            if let Some(ing) = self.program.controls.get(&pl.ingress) {
                if let Some(p0) = ing.params.first() {
                    if let Ok(Type::Struct(s)) = self.program.resolve_type(&p0.ty) {
                        self.walk_stacks(&s, "hdr", &mut out);
                    }
                }
            }
        }
        out
    }

    fn walk_stacks(&self, type_name: &str, path: &str, out: &mut Vec<String>) {
        let Some(fields) = self.program.struct_fields(type_name) else {
            return;
        };
        for (fname, fty) in fields {
            let fpath = format!("{path}.{fname}");
            match fty {
                Type::Stack(..) => out.push(fpath),
                Type::Struct(s) => self.walk_stacks(&s, &fpath, out),
                _ => {}
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn declare_local(
        &mut self,
        cur: BlockId,
        ctrl_name: &str,
        name: &str,
        ty: &Type,
        init: Option<&Expr>,
        env: &mut Env,
        ctrl: &ControlDef,
    ) -> Result<BlockId, Error> {
        let sort = match ty {
            Type::Bit(w) => Sort::Bv(*w),
            Type::Bool => Sort::Bool,
            other => {
                return Err(Error::new(
                    Span::default(),
                    format!("unsupported local type {other}"),
                ))
            }
        };
        let var = self.var(format!("{ctrl_name}.{name}"), sort);
        let mut cur = cur;
        if let Some(e) = init {
            let (t, ob) = self.lower_value_expect(e, env, ctrl, Some(sort))?;
            cur = self.discharge(cur, &ob, e.span().line, None);
            let t = coerce(t, sort);
            self.assign(cur, var.clone(), sort, t);
        } else {
            self.havoc(cur, var.clone(), sort);
        }
        env.insert(name.to_string(), Binding::Var(var, sort));
        Ok(cur)
    }

    // ---- parser ----

    fn parser_env(&self, parser: &ParserDef) -> Env {
        // Parser params: (packet_in, out hdr, inout meta, inout sm).
        self.base_env(&parser.params)
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_parser_state(
        &mut self,
        parser: &ParserDef,
        state: &str,
        visits: &BTreeMap<String, u32>,
        stack_next: &BTreeMap<String, u32>,
        accept_to: BlockId,
        reject_to: BlockId,
        env: &Env,
    ) -> Result<BlockId, Error> {
        if state == "accept" {
            return Ok(accept_to);
        }
        if state == "reject" {
            return Ok(reject_to);
        }
        let key = (
            state.to_string(),
            visits.iter().map(|(k, v)| (k.clone(), *v)).collect::<Vec<_>>(),
            stack_next
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect::<Vec<_>>(),
        );
        if let Some(&b) = self.parser_memo.get(&key) {
            return Ok(b);
        }
        let visit_count = visits.get(state).copied().unwrap_or(0);
        let limit = self.unroll_limit();
        if visit_count >= limit {
            // Hardware bounds parser loops; beyond the bound the packet is
            // rejected (the stack-overflow bug is caught at extract).
            return Ok(reject_to);
        }
        let st = parser
            .states
            .iter()
            .find(|s| s.name == state)
            .ok_or_else(|| Error::new(Span::default(), format!("unknown state {state}")))?
            .clone();
        let b = self.new_block(format!("parse:{state}"));
        self.parser_memo.insert(key, b);
        let mut visits2 = visits.clone();
        *visits2.entry(state.to_string()).or_insert(0) += 1;
        let mut stack_next2 = stack_next.clone();

        let mut env2 = env.clone();
        let mut cur = b;
        for s in &st.stmts {
            cur = self.lower_parser_stmt(s, cur, &mut env2, &mut stack_next2)?;
        }
        match &st.transition {
            Transition::Direct(next) => {
                let target = self.lower_parser_state(
                    parser, next, &visits2, &stack_next2, accept_to, reject_to, &env2,
                )?;
                self.seal(cur, Terminator::Jump(target));
            }
            Transition::Select { exprs, cases } => {
                // Evaluate selectors once.
                let mut sel_terms = Vec::new();
                for e in exprs {
                    let (t, ob) = self.lower_value(e, &env2, &dummy_ctrl())?;
                    cur = self.discharge(cur, &ob, e.span().line, None);
                    sel_terms.push(t);
                }
                let mut next_else: BlockId = reject_to; // no arm matches → reject
                // Build the chain back-to-front.
                let mut chain: Vec<(Term, BlockId)> = Vec::new();
                for case in cases {
                    let target = self.lower_parser_state(
                        parser,
                        &case.next,
                        &visits2,
                        &stack_next2,
                        accept_to,
                        reject_to,
                        &env2,
                    )?;
                    let cond = self.keyset_cond(&case.keyset, &sel_terms)?;
                    chain.push((cond, target));
                }
                for (cond, target) in chain.into_iter().rev() {
                    if cond.is_true() {
                        next_else = target;
                        continue;
                    }
                    let test = self.new_block("select-arm");
                    self.seal(
                        test,
                        Terminator::Branch {
                            cond,
                            then_to: target,
                            else_to: next_else,
                        },
                    );
                    next_else = test;
                }
                self.seal(cur, Terminator::Jump(next_else));
            }
        }
        Ok(b)
    }

    fn unroll_limit(&self) -> u32 {
        let max_stack = self
            .program
            .structs
            .values()
            .flatten()
            .filter_map(|(_, t)| match t {
                Type::Stack(_, n) => Some(*n),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        (max_stack + self.options.unroll_slack).max(2)
    }

    fn keyset_cond(&mut self, keyset: &[Keyset], sels: &[Term]) -> Result<Term, Error> {
        if keyset.len() == 1 && matches!(keyset[0], Keyset::Default) {
            return Ok(Term::tt());
        }
        let mut parts = Vec::new();
        for (k, sel) in keyset.iter().zip(sels) {
            match k {
                Keyset::Default => {}
                Keyset::Value(e) => {
                    let v = self.const_term(e, sel)?;
                    parts.push(sel.eq_term(&v));
                }
                Keyset::Mask(e, m) => {
                    let v = self.const_term(e, sel)?;
                    let m = self.const_term(m, sel)?;
                    parts.push(sel.bvand(&m).eq_term(&v.bvand(&m)));
                }
            }
        }
        Ok(Term::and_all(parts))
    }

    /// Evaluate a constant keyset expression at the selector's sort.
    fn const_term(&self, e: &Expr, sel: &Term) -> Result<Term, Error> {
        let v = const_eval(self.program, e)?;
        Ok(match sel.sort() {
            Sort::Bool => Term::bool(v != 0),
            Sort::Bv(w) => Term::bv(w, v),
        })
    }

    fn lower_parser_stmt(
        &mut self,
        s: &Stmt,
        cur: BlockId,
        env: &mut Env,
        stack_next: &mut BTreeMap<String, u32>,
    ) -> Result<BlockId, Error> {
        match s {
            Stmt::Call { call, span } => {
                let Expr::Call { func, args, .. } = call else {
                    unreachable!()
                };
                if let Expr::Member { base: _, member, .. } = func.as_ref() {
                    // pkt.extract(...)
                    if member == "extract" {
                        return self.lower_extract(&args[0], cur, env, stack_next, span.line);
                    }
                    if member == "advance" || member == "lookahead" {
                        return Ok(cur); // packet cursor not modeled
                    }
                    if member == "setValid" || member == "setInvalid" || member == "apply" {
                        // fall through to generic statement lowering
                    }
                }
                self.lower_stmt(s, cur, env, &dummy_ctrl())
            }
            _ => self.lower_stmt(s, cur, env, &dummy_ctrl()),
        }
    }

    fn lower_extract(
        &mut self,
        target: &Expr,
        cur: BlockId,
        env: &Env,
        stack_next: &mut BTreeMap<String, u32>,
        line: u32,
    ) -> Result<BlockId, Error> {
        // Resolve target place; `.next` uses and bumps the static counter.
        let (path, header_ty, mut cur) = match target {
            Expr::Member { base, member, .. } if member == "next" => {
                let place = self.resolve_place(base, env)?;
                let Place::Stack {
                    elem_type,
                    size,
                    path,
                } = place
                else {
                    return Err(Error::new(target.span(), ".next on non-stack"));
                };
                let n = stack_next.entry(path.clone()).or_insert(0);
                if *n >= size {
                    // Extracting past capacity. P4-16 semantics: the parser
                    // raises error.StackOutOfBounds and rejects the packet;
                    // under `strict_parser_overflow` it is reported as a
                    // bug node instead.
                    let sink = if self.options.strict_parser_overflow {
                        self.terminal(
                            BlockKind::Bug(BugInfo {
                                kind: BugKind::StackOutOfBounds,
                                description: format!("extract into full stack {path}"),
                                line,
                                table: None,
                            }),
                            "BUG:stack-overflow",
                        )
                    } else {
                        self.terminal(BlockKind::Reject, "reject:stack-overflow")
                    };
                    self.seal(cur, Terminator::Jump(sink));
                    // continue lowering in an unreachable block
                    let dead = self.new_block("after-overflow");
                    return Ok(dead);
                }
                let idx = *n;
                *n += 1;
                let epath = format!("{path}.{idx}");
                // track ghost counter for control-plane stack ops
                let nv = self.var(format!("{path}.$next"), Sort::Bv(32));
                let cur2 = cur;
                self.assign(cur2, nv, Sort::Bv(32), Term::bv(32, (idx + 1) as u128));
                (epath, elem_type, cur)
            }
            _ => {
                let place = self.resolve_place(target, env)?;
                match place {
                    Place::Header { type_name, path } => (path, type_name, cur),
                    Place::HeaderDyn { .. } => {
                        return Err(Error::new(
                            target.span(),
                            "extract into dynamically-indexed stack element",
                        ))
                    }
                    _ => return Err(Error::new(target.span(), "extract target not a header")),
                }
            }
        };
        // Fields come from the (symbolic) packet: havoc. Validity set.
        let fields = self.program.headers[&header_ty].clone();
        for (f, w) in fields {
            let fv = self.field_var(&path, &f, w);
            self.havoc(cur, fv, Sort::Bv(w));
        }
        let v = self.valid_var(&path);
        self.assign(cur, v, Sort::Bool, Term::tt());
        let _ = &mut cur;
        Ok(cur)
    }

    // ---- statements ----

    fn lower_stmts(
        &mut self,
        stmts: &[Stmt],
        mut cur: BlockId,
        env: &mut Env,
        ctrl: &ControlDef,
    ) -> Result<BlockId, Error> {
        for s in stmts {
            cur = self.lower_stmt(s, cur, env, ctrl)?;
        }
        Ok(cur)
    }

    fn lower_stmt(
        &mut self,
        s: &Stmt,
        cur: BlockId,
        env: &mut Env,
        ctrl: &ControlDef,
    ) -> Result<BlockId, Error> {
        match s {
            Stmt::Assign { lhs, rhs, span } => self.lower_assign(lhs, rhs, cur, env, ctrl, span),
            Stmt::Call { call, span } => self.lower_call_stmt(call, cur, env, ctrl, span),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                // Table-apply conditions expand the table first.
                let (cond_term, cur) = self.lower_condition(cond, cur, env, ctrl, span)?;
                let then_b = self.new_block("then");
                let else_b = self.new_block("else");
                self.seal(
                    cur,
                    Terminator::Branch {
                        cond: cond_term,
                        then_to: then_b,
                        else_to: else_b,
                    },
                );
                let then_end = self.lower_stmts(&then_blk.stmts, then_b, &mut env.clone(), ctrl)?;
                let else_end = self.lower_stmts(&else_blk.stmts, else_b, &mut env.clone(), ctrl)?;
                let join = self.new_block("join");
                self.seal(then_end, Terminator::Jump(join));
                self.seal(else_end, Terminator::Jump(join));
                Ok(join)
            }
            Stmt::Switch { expr, cases, span } => {
                let table = switch_table_name(expr)
                    .ok_or_else(|| Error::new(*span, "unsupported switch scrutinee"))?;
                let tdecl = ctrl
                    .table(&table)
                    .ok_or_else(|| Error::new(*span, format!("unknown table {table}")))?
                    .clone();
                let (site_idx, after) = self.expand_table(&tdecl, cur, env, ctrl)?;
                let site = self.tables[site_idx].clone();
                let action_t = Term::var(site.action_run_var.clone(), Sort::Bv(8));
                let join = self.new_block("switch-join");
                // default case body (if any)
                let mut default_block = join;
                for (label, body) in cases {
                    if label.is_none() {
                        let b = self.new_block("switch-default");
                        let e = self.lower_stmts(&body.stmts, b, &mut env.clone(), ctrl)?;
                        self.seal(e, Terminator::Jump(join));
                        default_block = b;
                    }
                }
                let mut next_else = default_block;
                for (label, body) in cases.iter().rev() {
                    let Some(l) = label else { continue };
                    let idx = site
                        .actions
                        .iter()
                        .position(|a| &a.name == l)
                        .ok_or_else(|| Error::new(*span, format!("unknown case {l}")))?;
                    let b = self.new_block(format!("case:{l}"));
                    let e = self.lower_stmts(&body.stmts, b, &mut env.clone(), ctrl)?;
                    self.seal(e, Terminator::Jump(join));
                    let test = self.new_block(format!("test:{l}"));
                    self.seal(
                        test,
                        Terminator::Branch {
                            cond: action_t.eq_term(&Term::bv(8, idx as u128)),
                            then_to: b,
                            else_to: next_else,
                        },
                    );
                    next_else = test;
                }
                self.seal(after, Terminator::Jump(next_else));
                Ok(join)
            }
            Stmt::Block(b) => self.lower_stmts(&b.stmts, cur, &mut env.clone(), ctrl),
            Stmt::Var {
                ty,
                name,
                init,
                span: _,
            } => {
                let t = self.program.resolve_type(ty)?;
                self.inline_counter += 1;
                let unique = format!("{}.{}#{}", ctrl.name, name, self.inline_counter);
                let sort = match t {
                    Type::Bit(w) => Sort::Bv(w),
                    Type::Bool => Sort::Bool,
                    other => {
                        return Err(Error::new(
                            Span::default(),
                            format!("unsupported local type {other}"),
                        ))
                    }
                };
                let var = self.var(unique, sort);
                let mut cur = cur;
                if let Some(e) = init {
                    let (t, ob) = self.lower_value_expect(e, env, ctrl, Some(sort))?;
                    cur = self.discharge(cur, &ob, e.span().line, None);
                    self.assign(cur, var.clone(), sort, coerce(t, sort));
                } else {
                    self.havoc(cur, var.clone(), sort);
                }
                env.insert(name.clone(), Binding::Var(var, sort));
                Ok(cur)
            }
            Stmt::Exit { .. } => {
                self.seal(cur, Terminator::Jump(self.exit_target));
                Ok(self.new_block("after-exit"))
            }
            Stmt::Return { .. } => {
                // Only supported as the last statement of an action body.
                Ok(cur)
            }
        }
    }

    /// Lower an `if` condition, expanding `t.apply().hit` / `.miss` forms.
    fn lower_condition(
        &mut self,
        cond: &Expr,
        cur: BlockId,
        env: &mut Env,
        ctrl: &ControlDef,
        span: &Span,
    ) -> Result<(Term, BlockId), Error> {
        // !cond
        if let Expr::Unary {
            op: UnOp::Not,
            arg,
            ..
        } = cond
        {
            if expr_mentions_apply(arg) {
                let (t, b) = self.lower_condition(arg, cur, env, ctrl, span)?;
                return Ok((t.not(), b));
            }
        }
        if let Expr::Member { base, member, .. } = cond {
            if member == "hit" || member == "miss" {
                if let Expr::Call { func, .. } = base.as_ref() {
                    if let Expr::Member { base, member: m2, .. } = func.as_ref() {
                        if m2 == "apply" {
                            if let Expr::Ident { name, .. } = base.as_ref() {
                                let tdecl = ctrl
                                    .table(name)
                                    .ok_or_else(|| {
                                        Error::new(*span, format!("unknown table {name}"))
                                    })?
                                    .clone();
                                let (site_idx, after) =
                                    self.expand_table(&tdecl, cur, env, ctrl)?;
                                let hit =
                                    Term::var(self.tables[site_idx].hit_var.clone(), Sort::Bool);
                                let t = if member == "hit" { hit } else { hit.not() };
                                return Ok((t, after));
                            }
                        }
                    }
                }
            }
        }
        let (t, ob) = self.lower_value(cond, env, ctrl)?;
        let cur = self.discharge(cur, &ob, span.line, None);
        Ok((t, cur))
    }

    fn lower_assign(
        &mut self,
        lhs: &Expr,
        rhs: &Expr,
        cur: BlockId,
        env: &mut Env,
        ctrl: &ControlDef,
        span: &Span,
    ) -> Result<BlockId, Error> {
        let lplace = self.resolve_place(lhs, env)?;
        // Header-to-header copy (encap/decap pattern).
        if let Place::Header {
            type_name: lt,
            path: lpath,
        } = &lplace
        {
            let rplace = self.resolve_place(rhs, env).ok();
            if let Some(Place::Header {
                type_name: rt,
                path: rpath,
            }) = rplace
            {
                if &rt == lt {
                    return self.lower_header_copy(lt, lpath, &rpath, cur, span.line);
                }
            }
        }
        let expect = match &lplace {
            Place::Scalar { sort, .. } => Some(*sort),
            _ => None,
        };
        let (rterm, mut ob) = self.lower_value_expect(rhs, env, ctrl, expect)?;
        match lplace {
            Place::Scalar { var, sort } => {
                // Writing a header field requires the header valid.
                if let Some(hv) = header_validity_of_field(&var) {
                    ob.validity.push(self.var(hv, Sort::Bool));
                }
                let cur = self.discharge(cur, &ob, span.line, None);
                self.assign(cur, var.clone(), sort, coerce(rterm, sort));
                if var.as_ref() == "standard_metadata.egress_spec" {
                    self.assign(cur, "$egress_set", Sort::Bool, Term::tt());
                }
                Ok(cur)
            }
            Place::HeaderDyn {
                elem_type,
                size,
                path,
                index,
            } => {
                // Dynamic stack-element write is not a field write; only
                // whole-header copies reach here — unsupported shape.
                let _ = (elem_type, size, path, index);
                Err(Error::new(
                    *span,
                    "assignment to dynamically-indexed stack element unsupported",
                ))
            }
            _ => Err(Error::new(*span, "unsupported assignment target")),
        }
    }

    /// The paper's instrumented header copy (§4.2 "Increasing bug coverage"):
    ///
    /// ```text
    /// if (src.isValid()) { copy fields; dst.setValid(); }
    /// else if (dst.isValid()) { BUG(destructive copy); }
    /// else { dontCare(); }
    /// ```
    fn lower_header_copy(
        &mut self,
        header_ty: &str,
        dst: &str,
        src: &str,
        cur: BlockId,
        line: u32,
    ) -> Result<BlockId, Error> {
        let src_valid = Term::var(self.valid_var(src), Sort::Bool);
        let dst_valid = Term::var(self.valid_var(dst), Sort::Bool);
        let join = self.new_block("copy-join");

        let copy_b = self.new_block(format!("copy {src} -> {dst}"));
        for (f, w) in self.program.headers[header_ty].clone() {
            let sv = self.field_var(src, &f, w);
            let dv = self.field_var(dst, &f, w);
            let t = Term::var(sv, Sort::Bv(w));
            self.assign(copy_b, dv, Sort::Bv(w), t);
        }
        let dvv = self.valid_var(dst);
        self.assign(copy_b, dvv, Sort::Bool, Term::tt());
        self.seal(copy_b, Terminator::Jump(join));

        if self.options.dontcare {
            let bug_b = self.terminal(
                BlockKind::Bug(BugInfo {
                    kind: BugKind::DestructiveHeaderCopy,
                    description: format!("copy of invalid {src} over valid {dst}"),
                    line,
                    table: None,
                }),
                "BUG:destructive-copy",
            );
            // no-op branch: marked dontCare, then continues
            let noop = self.new_block("copy-noop(dontCare)");
            self.dontcare_marks.push(noop);
            self.seal(noop, Terminator::Jump(join));
            let invalid_src = self.new_block("copy-invalid-src");
            self.seal(
                invalid_src,
                Terminator::Branch {
                    cond: dst_valid,
                    then_to: bug_b,
                    else_to: noop,
                },
            );
            self.seal(
                cur,
                Terminator::Branch {
                    cond: src_valid,
                    then_to: copy_b,
                    else_to: invalid_src,
                },
            );
        } else {
            // uninstrumented: invalid source copies garbage (still defined
            // as a copy of unconstrained fields) — model as field copy of
            // havoc: just copy fields and validity.
            let alt = self.new_block("copy-any");
            for (f, w) in self.program.headers[header_ty].clone() {
                let sv = self.field_var(src, &f, w);
                let dv = self.field_var(dst, &f, w);
                let t = Term::var(sv, Sort::Bv(w));
                self.assign(alt, dv, Sort::Bv(w), t);
            }
            let dvv = self.valid_var(dst);
            let svv = self.valid_var(src);
            let t = Term::var(svv, Sort::Bool);
            self.assign(alt, dvv, Sort::Bool, t);
            self.seal(alt, Terminator::Jump(join));
            self.seal(cur, Terminator::Jump(alt));
            // copy_b unreachable in this mode
            let _ = copy_b;
        }
        Ok(join)
    }

    fn lower_call_stmt(
        &mut self,
        call: &Expr,
        cur: BlockId,
        env: &mut Env,
        ctrl: &ControlDef,
        span: &Span,
    ) -> Result<BlockId, Error> {
        let Expr::Call { func, args, .. } = call else {
            unreachable!()
        };
        match func.as_ref() {
            Expr::Ident { name, .. } => self.lower_free_call(name, args, cur, env, ctrl, span),
            Expr::Member { base, member, .. } => {
                self.lower_method_call(base, member, args, cur, env, ctrl, span)
            }
            _ => Err(Error::new(*span, "unsupported call")),
        }
    }

    fn lower_free_call(
        &mut self,
        name: &str,
        args: &[Expr],
        mut cur: BlockId,
        env: &mut Env,
        ctrl: &ControlDef,
        span: &Span,
    ) -> Result<BlockId, Error> {
        match name {
            "mark_to_drop" | "drop" => {
                self.assign(
                    cur,
                    "standard_metadata.egress_spec",
                    Sort::Bv(9),
                    Term::bv(9, DROP_PORT),
                );
                self.assign(cur, "$egress_set", Sort::Bool, Term::tt());
                Ok(cur)
            }
            "random" => {
                // random(out result, lo, hi) — havoc the destination.
                let place = self.resolve_place(&args[0], env)?;
                let Place::Scalar { var, sort } = place else {
                    return Err(Error::new(*span, "random target not scalar"));
                };
                self.havoc(cur, var, sort);
                Ok(cur)
            }
            "hash" => {
                // hash(out result, algo, base, {fields}, max) — havoc result,
                // but check validity of fields read.
                let place = self.resolve_place(&args[0], env)?;
                let Place::Scalar { var, sort } = place else {
                    return Err(Error::new(*span, "hash target not scalar"));
                };
                let mut ob = Obligations::default();
                for a in &args[1..] {
                    if let Ok((_, o)) = self.lower_value(a, env, ctrl) {
                        ob.merge(o);
                    }
                }
                cur = self.discharge(cur, &ob, span.line, None);
                self.havoc(cur, var, sort);
                Ok(cur)
            }
            "assert" | "assume" => {
                let (t, ob) = self.lower_value(&args[0], env, ctrl)?;
                cur = self.discharge(cur, &ob, span.line, None);
                cur = self.guard(
                    cur,
                    t,
                    BugInfo {
                        kind: BugKind::UserAssert,
                        description: format!("user assertion at line {}", span.line),
                        line: span.line,
                        table: None,
                    },
                );
                Ok(cur)
            }
            // Control-plane / mirroring externs: no dataplane state change
            // we model.
            "digest" | "clone" | "clone3" | "clone_preserving_field_list" | "resubmit"
            | "resubmit_preserving_field_list" | "recirculate"
            | "recirculate_preserving_field_list" | "truncate" | "log_msg"
            | "verify_checksum" | "update_checksum" | "verify_checksum_with_payload"
            | "update_checksum_with_payload" | "NoAction" => Ok(cur),
            // direct action invocation
            _ => {
                if let Some(action) = ctrl.action(name).cloned() {
                    let mut bindings = Vec::new();
                    for (p, a) in action.params.iter().zip(args) {
                        let psort = match self.program.resolve_type(&p.ty)? {
                            Type::Bit(w) => Some(Sort::Bv(w)),
                            Type::Bool => Some(Sort::Bool),
                            _ => None,
                        };
                        let (t, ob) = self.lower_value_expect(a, env, ctrl, psort)?;
                        cur = self.discharge(cur, &ob, span.line, None);
                        bindings.push((p.name.clone(), Binding::Value(t)));
                    }
                    return self.inline_action(&action, bindings, cur, env, ctrl, None);
                }
                Err(Error::new(*span, format!("unknown call target {name}")))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_method_call(
        &mut self,
        base: &Expr,
        method: &str,
        args: &[Expr],
        mut cur: BlockId,
        env: &mut Env,
        ctrl: &ControlDef,
        span: &Span,
    ) -> Result<BlockId, Error> {
        // table.apply()
        if let Expr::Ident { name, .. } = base {
            if let Some(tdecl) = ctrl.table(name).cloned() {
                if method == "apply" {
                    let (_site, after) = self.expand_table(&tdecl, cur, env, ctrl)?;
                    return Ok(after);
                }
            }
            if let Some(reg) = ctrl.register(name).cloned() {
                return self.lower_register_op(&reg, method, args, cur, env, ctrl, span);
            }
        }
        match method {
            "setValid" => {
                let place = self.resolve_place(base, env)?;
                let Place::Header { type_name, path } = place else {
                    return Err(Error::new(*span, "setValid on non-header"));
                };
                // Fields become undefined per spec: havoc them.
                for (f, w) in self.program.headers[&type_name].clone() {
                    let fv = self.field_var(&path, &f, w);
                    self.havoc(cur, fv, Sort::Bv(w));
                }
                let v = self.valid_var(&path);
                self.assign(cur, v, Sort::Bool, Term::tt());
                Ok(cur)
            }
            "setInvalid" => {
                let place = self.resolve_place(base, env)?;
                let Place::Header { path, .. } = place else {
                    return Err(Error::new(*span, "setInvalid on non-header"));
                };
                let v = self.valid_var(&path);
                self.assign(cur, v, Sort::Bool, Term::ff());
                Ok(cur)
            }
            "push_front" | "pop_front" => {
                let place = self.resolve_place(base, env)?;
                let Place::Stack {
                    elem_type,
                    size,
                    path,
                } = place
                else {
                    return Err(Error::new(*span, "stack op on non-stack"));
                };
                let count = const_eval(self.program, &args[0])? as u32;
                self.lower_stack_op(
                    method == "push_front",
                    &elem_type,
                    size,
                    &path,
                    count,
                    &mut cur,
                    span.line,
                );
                Ok(cur)
            }
            "emit" => Ok(cur), // deparser emit: no state change we check
            "extract" => {
                // extract outside parser contexts is unusual; treat like
                // parser extract without `.next` support.
                let mut dummy = BTreeMap::new();
                self.lower_extract(&args[0], cur, env, &mut dummy, span.line)
            }
            "count" | "execute_meter" | "read" | "write" => {
                // opaque extern instance ops (counters/meters) — no-op
                Ok(cur)
            }
            _ => Err(Error::new(*span, format!("unsupported method {method}"))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_register_op(
        &mut self,
        reg: &bf4_p4::typecheck::RegisterDef,
        method: &str,
        args: &[Expr],
        mut cur: BlockId,
        env: &mut Env,
        ctrl: &ControlDef,
        span: &Span,
    ) -> Result<BlockId, Error> {
        let check_idx = |this: &mut Self, cur: BlockId, idx: &Term| -> BlockId {
            if !this.options.check_bounds {
                return cur;
            }
            let w = idx.width();
            // If the register is at least as large as the index domain, the
            // access cannot be out of bounds.
            if (reg.size as u128) >= (1u128 << w.min(127)) {
                return cur;
            }
            let cond = idx.bvult(&Term::bv(w, reg.size as u128));
            this.guard(
                cur,
                cond,
                BugInfo {
                    kind: BugKind::RegisterOutOfBounds,
                    description: format!("register {} index out of bounds", reg.name),
                    line: span.line,
                    table: None,
                },
            )
        };
        match method {
            "read" => {
                let (idx, ob) = self.lower_value_expect(&args[1], env, ctrl, Some(Sort::Bv(32)))?;
                cur = self.discharge(cur, &ob, span.line, None);
                cur = check_idx(self, cur, &idx);
                let place = self.resolve_place(&args[0], env)?;
                let Place::Scalar { var, sort } = place else {
                    return Err(Error::new(*span, "register read target not scalar"));
                };
                // Register contents are controller/dataplane state we do not
                // track: havoc the destination.
                self.havoc(cur, var, sort);
                Ok(cur)
            }
            "write" => {
                let (idx, ob) = self.lower_value_expect(&args[0], env, ctrl, Some(Sort::Bv(32)))?;
                cur = self.discharge(cur, &ob, span.line, None);
                cur = check_idx(self, cur, &idx);
                let (_val, ob2) =
                    self.lower_value_expect(&args[1], env, ctrl, Some(Sort::Bv(reg.width)))?;
                cur = self.discharge(cur, &ob2, span.line, None);
                Ok(cur)
            }
            _ => Err(Error::new(
                *span,
                format!("register has no method {method}"),
            )),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_stack_op(
        &mut self,
        push: bool,
        elem_type: &str,
        size: u32,
        path: &str,
        count: u32,
        cur: &mut BlockId,
        line: u32,
    ) {
        let next = Term::var(self.var(format!("{path}.$next"), Sort::Bv(32)), Sort::Bv(32));
        if self.options.check_bounds {
            let cond = if push {
                // pushing onto a full stack
                next.bvule(&Term::bv(32, (size - count.min(size)) as u128))
            } else {
                // popping from an empty stack
                next.bvuge(&Term::bv(32, count as u128))
            };
            *cur = self.guard(
                *cur,
                cond,
                BugInfo {
                    kind: BugKind::StackOutOfBounds,
                    description: format!(
                        "{} {count} on stack {path}",
                        if push { "push_front" } else { "pop_front" }
                    ),
                    line,
                    table: None,
                },
            );
        }
        let fields = self.program.headers[elem_type].clone();
        if push {
            // shift up: elem[i] := elem[i-count]; front elements havoc+valid
            for i in (count..size).rev() {
                let dst = format!("{path}.{i}");
                let src = format!("{path}.{}", i - count);
                for (f, w) in &fields {
                    let sv = self.field_var(&src, f, *w);
                    let dv = self.field_var(&dst, f, *w);
                    let t = Term::var(sv, Sort::Bv(*w));
                    self.assign(*cur, dv, Sort::Bv(*w), t);
                }
                let sv = self.valid_var(&src);
                let dv = self.valid_var(&dst);
                let t = Term::var(sv, Sort::Bool);
                self.assign(*cur, dv, Sort::Bool, t);
            }
            for i in 0..count.min(size) {
                let dst = format!("{path}.{i}");
                for (f, w) in &fields {
                    let dv = self.field_var(&dst, f, *w);
                    self.havoc(*cur, dv, Sort::Bv(*w));
                }
                let dv = self.valid_var(&dst);
                // per P4-16 spec push_front inserts *invalid* elements
                self.assign(*cur, dv, Sort::Bool, Term::ff());
            }
            let nv = self.var(format!("{path}.$next"), Sort::Bv(32));
            let bumped = next.bvadd(&Term::bv(32, count as u128));
            self.assign(*cur, nv, Sort::Bv(32), bumped);
        } else {
            // shift down
            for i in 0..size.saturating_sub(count) {
                let dst = format!("{path}.{i}");
                let src = format!("{path}.{}", i + count);
                for (f, w) in &fields {
                    let sv = self.field_var(&src, f, *w);
                    let dv = self.field_var(&dst, f, *w);
                    let t = Term::var(sv, Sort::Bv(*w));
                    self.assign(*cur, dv, Sort::Bv(*w), t);
                }
                let sv = self.valid_var(&src);
                let dv = self.valid_var(&dst);
                let t = Term::var(sv, Sort::Bool);
                self.assign(*cur, dv, Sort::Bool, t);
            }
            for i in size.saturating_sub(count)..size {
                let dv = self.valid_var(&format!("{path}.{i}"));
                self.assign(*cur, dv, Sort::Bool, Term::ff());
            }
            let nv = self.var(format!("{path}.$next"), Sort::Bv(32));
            let dec = next.bvsub(&Term::bv(32, count as u128));
            self.assign(*cur, nv, Sort::Bv(32), dec);
        }
    }

    // ---- table expansion ----

    /// Expand a `t.apply()` call at `cur`. Returns `(site index, block where
    /// execution continues after the table)`.
    fn expand_table(
        &mut self,
        tdecl: &TableDecl,
        cur: BlockId,
        env: &mut Env,
        ctrl: &ControlDef,
    ) -> Result<(usize, BlockId), Error> {
        let site = self.site_counter;
        self.site_counter += 1;
        let prefix = format!("pcn.{}#{}", tdecl.name, site);
        let reach_var = self.var(format!("{prefix}.reach"), Sort::Bool);
        let hit_var = self.var(format!("{prefix}.hit"), Sort::Bool);
        let action_var = self.var(format!("{prefix}.action"), Sort::Bv(8));
        let action_run_var = self.var(format!("{prefix}.action_run"), Sort::Bv(8));

        let entry = self.new_block(format!("table:{} (site {site})", tdecl.name));
        self.seal(cur, Terminator::Jump(entry));

        // Keys.
        let mut keys = Vec::new();
        for (i, (kexpr, kind)) in tdecl.keys.iter().enumerate() {
            let (expr, ob) = self.lower_value(kexpr, env, ctrl)?;
            let is_validity_key = matches!(
                kexpr,
                Expr::Call { func, .. } if matches!(func.as_ref(), Expr::Member { member, .. } if member == "isValid")
            );
            let sort = expr.sort();
            let value_var = self.var(format!("{prefix}.key{i}.value"), sort);
            let mask_var = if kind == "ternary" || kind == "lpm" || kind == "optional"
                || kind == "range"
            {
                Some(self.var(format!("{prefix}.key{i}.mask"), sort))
            } else {
                None
            };
            let mut seen = HashSet::new();
            let validity = Term::and_all(
                ob.validity
                    .iter()
                    .filter(|v| seen.insert((*v).clone()))
                    .map(|v| Term::var(v.clone(), Sort::Bool))
                    .collect::<Vec<_>>(),
            );
            keys.push(TableKeyInfo {
                source: expr_source(kexpr),
                match_kind: kind.clone(),
                expr,
                value_var,
                mask_var,
                validity,
                is_validity_key,
            });
        }

        // Actions: listed actions, plus default if not listed. NoAction is
        // an implicit empty action.
        let mut action_names: Vec<String> = tdecl.actions.clone();
        let default_name = tdecl
            .default_action
            .as_ref()
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| "NoAction".to_string());
        if !action_names.contains(&default_name) {
            action_names.push(default_name.clone());
        }
        let default_action = action_names
            .iter()
            .position(|a| a == &default_name)
            .unwrap();

        let mut actions = Vec::new();
        for aname in &action_names {
            let mut param_vars = Vec::new();
            if let Some(ad) = ctrl.action(aname) {
                for p in &ad.params {
                    if p.dir == Direction::None {
                        let t = self.program.resolve_type(&p.ty)?;
                        let sort = match t {
                            Type::Bit(w) => Sort::Bv(w),
                            Type::Bool => Sort::Bool,
                            other => {
                                return Err(Error::new(
                                    ad.span,
                                    format!("unsupported action parameter type {other}"),
                                ))
                            }
                        };
                        let v = self.var(format!("{prefix}.{aname}.{}", p.name), sort);
                        param_vars.push((v, sort));
                    }
                }
            }
            actions.push(TableActionInfo {
                name: aname.clone(),
                param_vars,
            });
        }

        // Entry block: havoc entry contents, set reach.
        for k in &keys {
            let kv = k.value_var.clone();
            let sort = self.var_sorts[&kv];
            self.havoc(entry, kv, sort);
            if let Some(m) = &k.mask_var {
                let sort = self.var_sorts[m];
                self.havoc(entry, m.clone(), sort);
            }
        }
        for a in &actions {
            for (v, sort) in &a.param_vars {
                self.havoc(entry, v.clone(), *sort);
            }
        }
        self.havoc(entry, hit_var.clone(), Sort::Bool);
        self.havoc(entry, action_var.clone(), Sort::Bv(8));
        self.assign(entry, reach_var.clone(), Sort::Bool, Term::tt());

        let join = self.new_block(format!("after:{}", tdecl.name));
        let site_info = TableSite {
            table: tdecl.name.clone(),
            control: ctrl.name.clone(),
            site,
            prefix: prefix.clone(),
            entry_block: entry,
            exit_block: join,
            reach_var: reach_var.clone(),
            hit_var: hit_var.clone(),
            action_var: action_var.clone(),
            action_run_var: action_run_var.clone(),
            keys: keys.clone(),
            actions: actions.clone(),
            default_action,
        };
        let site_idx = self.tables.len();
        self.tables.push(site_info);

        // Miss path: action := default; run default action with const args.
        let miss_b = self.new_block(format!("miss:{}", tdecl.name));
        self.assign(
            miss_b,
            action_run_var.clone(),
            Sort::Bv(8),
            Term::bv(8, default_action as u128),
        );
        let default_args: Vec<Term> = match &tdecl.default_action {
            Some((name, args)) => {
                let mut out = Vec::new();
                if let Some(ad) = ctrl.action(name) {
                    for (p, a) in ad.params.iter().zip(args) {
                        let t = self.program.resolve_type(&p.ty)?;
                        let v = const_eval(self.program, a)?;
                        out.push(match t {
                            Type::Bit(w) => Term::bv(w, v),
                            Type::Bool => Term::bool(v != 0),
                            _ => unreachable!(),
                        });
                    }
                }
                out
            }
            None => vec![],
        };
        let miss_end = {
            let aname = &action_names[default_action];
            if let Some(ad) = ctrl.action(aname).cloned() {
                let bindings: Vec<(String, Binding)> = ad
                    .params
                    .iter()
                    .zip(default_args.iter())
                    .map(|(p, t)| (p.name.clone(), Binding::Value(t.clone())))
                    .collect();
                self.inline_action(&ad, bindings, miss_b, env, ctrl, Some(site_idx))?
            } else {
                miss_b // NoAction
            }
        };
        self.seal(miss_end, Terminator::Jump(join));

        // Hit path: key-match assumption, key-validity check, dispatch.
        let infeasible = self.terminal(BlockKind::Infeasible, "no-matching-entry");
        let mut match_cond = Vec::new();
        let mut validity_cond = Vec::new();
        for k in &keys {
            let value = Term::var(k.value_var.clone(), k.expr.sort());
            match k.match_kind.as_str() {
                "exact" | "selector" => {
                    match_cond.push(value.eq_term(&k.expr));
                    validity_cond.push(k.validity.clone());
                }
                "range" => {
                    let hi = Term::var(k.mask_var.clone().unwrap(), k.expr.sort());
                    match_cond.push(value.bvule(&k.expr));
                    match_cond.push(k.expr.bvule(&hi));
                    validity_cond.push(k.validity.clone());
                }
                _ => {
                    // ternary / lpm / optional: masked compare; key read only
                    // happens when the mask is non-zero.
                    let mask = Term::var(k.mask_var.clone().unwrap(), k.expr.sort());
                    match_cond.push(k.expr.bvand(&mask).eq_term(&value.bvand(&mask)));
                    let w = k.expr.width();
                    let mask_zero = mask.eq_term(&Term::bv(w, 0));
                    validity_cond.push(mask_zero.or(&k.validity));
                }
            }
        }
        let hit_b = self.new_block(format!("hit:{}", tdecl.name));
        let dispatch_start = self.new_block(format!("dispatch:{}", tdecl.name));
        let key_ok: BlockId = if self.options.check_validity
            && !Term::and_all(validity_cond.clone()).is_true()
        {
            let bug = self.terminal(
                BlockKind::Bug(BugInfo {
                    kind: BugKind::InvalidKeyAccess,
                    description: format!(
                        "table {} matches on field of invalid header",
                        tdecl.name
                    ),
                    line: tdecl.span.line,
                    table: Some(site_idx),
                }),
                format!("BUG:key-validity:{}", tdecl.name),
            );
            let chk = self.new_block(format!("keycheck:{}", tdecl.name));
            self.seal(
                chk,
                Terminator::Branch {
                    cond: Term::and_all(validity_cond),
                    then_to: dispatch_start,
                    else_to: bug,
                },
            );
            chk
        } else {
            dispatch_start
        };
        self.seal(
            hit_b,
            Terminator::Branch {
                cond: Term::and_all(match_cond),
                then_to: key_ok,
                else_to: infeasible,
            },
        );

        // Dispatch chain over actions (hit case).
        let action_t = Term::var(action_var.clone(), Sort::Bv(8));
        let mut next_else = infeasible; // selector out of range: impossible
        for (idx, a) in actions.iter().enumerate().rev() {
            let body = self.new_block(format!("action:{}", a.name));
            let body_end = if let Some(ad) = ctrl.action(&a.name).cloned() {
                let bindings: Vec<(String, Binding)> = ad
                    .params
                    .iter()
                    .zip(a.param_vars.iter())
                    .map(|(p, (v, sort))| {
                        (p.name.clone(), Binding::Value(Term::var(v.clone(), *sort)))
                    })
                    .collect();
                self.inline_action(&ad, bindings, body, env, ctrl, Some(site_idx))?
            } else {
                body // NoAction
            };
            self.seal(body_end, Terminator::Jump(join));
            let test = self.new_block(format!("sel:{}", a.name));
            self.seal(
                test,
                Terminator::Branch {
                    cond: action_t.eq_term(&Term::bv(8, idx as u128)),
                    then_to: body,
                    else_to: next_else,
                },
            );
            next_else = test;
        }
        self.assign(
            dispatch_start,
            action_run_var.clone(),
            Sort::Bv(8),
            Term::var(action_var.clone(), Sort::Bv(8)),
        );
        self.seal(dispatch_start, Terminator::Jump(next_else));

        self.seal(
            entry,
            Terminator::Branch {
                cond: Term::var(hit_var, Sort::Bool),
                then_to: hit_b,
                else_to: miss_b,
            },
        );
        Ok((site_idx, join))
    }

    fn inline_action(
        &mut self,
        action: &ActionDecl,
        bindings: Vec<(String, Binding)>,
        cur: BlockId,
        env: &Env,
        ctrl: &ControlDef,
        table: Option<usize>,
    ) -> Result<BlockId, Error> {
        self.inline_counter += 1;
        let mut aenv = env.clone();
        for (n, b) in bindings {
            aenv.insert(n, b);
        }
        let _ = table;
        self.lower_stmts(&action.body.stmts, cur, &mut aenv, ctrl)
    }

    // ---- places & expressions ----

    fn resolve_place(&mut self, e: &Expr, env: &Env) -> Result<Place, Error> {
        match e {
            Expr::Ident { name, span } => match env.get(name) {
                Some(Binding::Place(p)) => Ok(p.clone()),
                Some(Binding::Var(v, s)) => Ok(Place::Scalar {
                    var: v.clone(),
                    sort: *s,
                }),
                Some(Binding::Value(_)) => Err(Error::new(
                    *span,
                    format!("`{name}` is not assignable here"),
                )),
                None => Err(Error::new(*span, format!("unknown identifier `{name}`"))),
            },
            Expr::Member { base, member, span } => {
                let bp = self.resolve_place(base, env)?;
                match bp {
                    Place::Struct { type_name, path } => {
                        let fields = self.program.struct_fields(&type_name).ok_or_else(|| {
                            Error::new(*span, format!("unknown struct {type_name}"))
                        })?;
                        let (_, fty) = fields
                            .iter()
                            .find(|(n, _)| n == member)
                            .ok_or_else(|| {
                                Error::new(*span, format!("no field {member} in {type_name}"))
                            })?
                            .clone();
                        let fpath = format!("{path}.{member}");
                        Ok(match fty {
                            Type::Bit(w) => Place::Scalar {
                                var: self.var(fpath, Sort::Bv(w)),
                                sort: Sort::Bv(w),
                            },
                            Type::Bool => Place::Scalar {
                                var: self.var(fpath, Sort::Bool),
                                sort: Sort::Bool,
                            },
                            Type::Header(h) => Place::Header {
                                type_name: h,
                                path: fpath,
                            },
                            Type::Struct(s) => Place::Struct {
                                type_name: s,
                                path: fpath,
                            },
                            Type::Stack(h, n) => Place::Stack {
                                elem_type: h,
                                size: n,
                                path: fpath,
                            },
                            Type::Int => unreachable!(),
                        })
                    }
                    Place::Header { type_name, path } => {
                        let w = self
                            .program
                            .header_field_width(&type_name, member)
                            .ok_or_else(|| {
                                Error::new(*span, format!("no field {member} in {type_name}"))
                            })?;
                        Ok(Place::Scalar {
                            var: self.var(format!("{path}.{member}"), Sort::Bv(w)),
                            sort: Sort::Bv(w),
                        })
                    }
                    Place::Stack {
                        elem_type,
                        size,
                        path,
                    } => match member.as_str() {
                        "last" => {
                            let next =
                                Term::var(self.var(format!("{path}.$next"), Sort::Bv(32)), Sort::Bv(32));
                            Ok(Place::HeaderDyn {
                                elem_type,
                                size,
                                path,
                                index: next.bvsub(&Term::bv(32, 1)),
                            })
                        }
                        "next" => {
                            let next =
                                Term::var(self.var(format!("{path}.$next"), Sort::Bv(32)), Sort::Bv(32));
                            Ok(Place::HeaderDyn {
                                elem_type,
                                size,
                                path,
                                index: next,
                            })
                        }
                        _ => Err(Error::new(
                            *span,
                            format!("unsupported stack member {member}"),
                        )),
                    },
                    Place::HeaderDyn { .. } => Err(Error::new(
                        *span,
                        "field of dynamically-indexed element is not a place",
                    )),
                    Place::Scalar { .. } => {
                        Err(Error::new(*span, "member access on scalar"))
                    }
                }
            }
            Expr::Index { base, index, span } => {
                let bp = self.resolve_place(base, env)?;
                let Place::Stack {
                    elem_type,
                    size,
                    path,
                } = bp
                else {
                    return Err(Error::new(*span, "indexing non-stack"));
                };
                // Constant index resolves statically.
                if let Ok(i) = const_eval(self.program, index) {
                    if (i as u32) >= size {
                        return Err(Error::new(
                            *span,
                            format!("constant index {i} out of bounds for {path}[{size}]"),
                        ));
                    }
                    return Ok(Place::Header {
                        type_name: elem_type,
                        path: format!("{path}.{i}"),
                    });
                }
                let (idx, _ob) = self.lower_value(index, env, &dummy_ctrl())?;
                Ok(Place::HeaderDyn {
                    elem_type,
                    size,
                    path,
                    index: idx,
                })
            }
            _ => Err(Error::new(e.span(), "expression is not a place")),
        }
    }

    /// Lower a value expression to a term plus obligations.
    fn lower_value(
        &mut self,
        e: &Expr,
        env: &Env,
        ctrl: &ControlDef,
    ) -> Result<(Term, Obligations), Error> {
        self.lower_value_expect(e, env, ctrl, None)
    }

    /// Lower a value with an optional expected sort, used to give unsized
    /// integer literals (`64`, `1 << 3`) their width from context.
    fn lower_value_expect(
        &mut self,
        e: &Expr,
        env: &Env,
        ctrl: &ControlDef,
        expect: Option<Sort>,
    ) -> Result<(Term, Obligations), Error> {
        let mut ob = Obligations::default();
        let t = self.lower_value_rec2(e, env, ctrl, &mut ob, expect)?;
        Ok((t, ob))
    }

    /// Entry point keeping the historical 4-argument shape.
    fn lower_value_rec(
        &mut self,
        e: &Expr,
        env: &Env,
        ctrl: &ControlDef,
        ob: &mut Obligations,
    ) -> Result<Term, Error> {
        self.lower_value_rec2(e, env, ctrl, ob, None)
    }

    fn lower_value_rec2(
        &mut self,
        e: &Expr,
        env: &Env,
        ctrl: &ControlDef,
        ob: &mut Obligations,
        expect: Option<Sort>,
    ) -> Result<Term, Error> {
        match e {
            Expr::Number { value, width, span } => match (width, expect) {
                (Some(w), _) => Ok(Term::bv(*w, *value)),
                (None, Some(Sort::Bv(w))) => Ok(Term::bv(w, *value)),
                (None, Some(Sort::Bool)) => Ok(Term::bool(*value != 0)),
                (None, None) => Err(Error::new(
                    *span,
                    "unsized literal in a context that needs a width",
                )),
            },
            Expr::Bool { value, .. } => Ok(Term::bool(*value)),
            Expr::Ident { name, span } => match env.get(name) {
                Some(Binding::Var(v, s)) => Ok(Term::var(v.clone(), *s)),
                Some(Binding::Value(t)) => Ok(t.clone()),
                Some(Binding::Place(_)) => Err(Error::new(
                    *span,
                    format!("aggregate `{name}` used as value"),
                )),
                None => Err(Error::new(*span, format!("unknown identifier `{name}`"))),
            },
            Expr::Member { base, member, span } => {
                // Field of a dynamically-indexed stack element: ite-chain
                // over elements, with a bounds obligation.
                if let Ok(Place::HeaderDyn {
                    elem_type,
                    size,
                    path,
                    index,
                }) = self.resolve_place(base, env)
                {
                    let w = self
                        .program
                        .header_field_width(&elem_type, member)
                        .ok_or_else(|| {
                            Error::new(*span, format!("no field {member} in {elem_type}"))
                        })?;
                    ob.bounds
                        .push((index.clone(), size, format!("stack {path}")));
                    // validity of the selected element
                    let valid = self.dyn_elem_bool(&path, size, &index, "$valid");
                    // The validity obligation for dynamic elements cannot be
                    // expressed as a single bit name; encode it as a bounds-
                    // style conjunct by introducing a ghost: we instead fold
                    // it into the returned obligations via a synthetic
                    // variable assignment at check time. Simpler and sound:
                    // check `valid` via a guard expressed through `bounds` by
                    // the caller is not possible, so we extend Obligations
                    // with a raw term list.
                    ob.raw_checks.push((
                        valid,
                        format!("dynamic element of {path} invalid"),
                    ));
                    let mut out = Term::bv(w, 0);
                    for i in (0..size).rev() {
                        let fv = self.var(format!("{path}.{i}.{member}"), Sort::Bv(w));
                        let v = Term::var(fv, Sort::Bv(w));
                        let cond = index.eq_term(&Term::bv(index.width(), i as u128));
                        out = cond.ite(&v, &out);
                    }
                    return Ok(out);
                }
                let place = self.resolve_place(e, env)?;
                match place {
                    Place::Scalar { var, sort } => {
                        if let Some(hv) = header_validity_of_field(&var) {
                            ob.validity.push(self.var(hv, Sort::Bool));
                        }
                        Ok(Term::var(var, sort))
                    }
                    _ => Err(Error::new(e.span(), "aggregate used as value")),
                }
            }
            Expr::Index { .. } => {
                let place = self.resolve_place(e, env)?;
                match place {
                    Place::Scalar { var, sort } => Ok(Term::var(var, sort)),
                    _ => Err(Error::new(e.span(), "aggregate used as value")),
                }
            }
            Expr::Slice { base, hi, lo, span } => {
                let b = self.lower_value_rec(base, env, ctrl, ob)?;
                if *hi >= b.width() || lo > hi {
                    return Err(Error::new(*span, "slice out of range"));
                }
                Ok(b.extract(*hi, *lo))
            }
            Expr::Call { func, args: _, span } => {
                if let Expr::Member { base, member, .. } = func.as_ref() {
                    if member == "isValid" {
                        let place = self.resolve_place(base, env)?;
                        return match place {
                            Place::Header { path, .. } => {
                                Ok(Term::var(self.valid_var(&path), Sort::Bool))
                            }
                            Place::HeaderDyn {
                                size, path, index, ..
                            } => {
                                ob.bounds.push((
                                    index.clone(),
                                    size,
                                    format!("stack {path}"),
                                ));
                                Ok(self.dyn_elem_bool(&path, size, &index, "$valid"))
                            }
                            _ => Err(Error::new(*span, "isValid on non-header")),
                        };
                    }
                }
                // Field reads of dynamically indexed headers come through
                // Member of HeaderDyn — handled in resolve_place as error;
                // support them here:
                Err(Error::new(*span, "call in value position unsupported"))
            }
            Expr::Unary { op, arg, span } => {
                let sub_expect = match op {
                    UnOp::Not => Some(Sort::Bool),
                    _ => expect,
                };
                let a = self.lower_value_rec2(arg, env, ctrl, ob, sub_expect)?;
                Ok(match op {
                    UnOp::Not => {
                        if a.sort() != Sort::Bool {
                            return Err(Error::new(*span, "! on non-bool"));
                        }
                        a.not()
                    }
                    UnOp::BitNot => a.bvnot(),
                    UnOp::Neg => a.bvneg(),
                })
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let arith_expect = match op {
                    BinOp::And | BinOp::Or => Some(Sort::Bool),
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => None,
                    _ => expect,
                };
                // Lower whichever side has concrete width information first
                // so an unsized literal on the other side inherits it.
                let (a, b) = match self.lower_value_rec2(lhs, env, ctrl, ob, arith_expect) {
                    Ok(a) => {
                        let b = self.lower_value_rec2(rhs, env, ctrl, ob, Some(a.sort()))?;
                        (a, b)
                    }
                    Err(first_err) => {
                        let b = self
                            .lower_value_rec2(rhs, env, ctrl, ob, arith_expect)
                            .map_err(|_| first_err.clone())?;
                        let a = self
                            .lower_value_rec2(lhs, env, ctrl, ob, Some(b.sort()))
                            .map_err(|_| first_err)?;
                        (a, b)
                    }
                };
                let (a, b) = unify_terms(a, b, lhs, rhs)?;
                let _ = span;
                Ok(match op {
                    BinOp::Add => a.bvadd(&b),
                    BinOp::Sub => a.bvsub(&b),
                    BinOp::Mul => a.bvmul(&b),
                    BinOp::Div => a.bvudiv(&b),
                    BinOp::Mod => a.bvurem(&b),
                    BinOp::BitAnd => a.bvand(&b),
                    BinOp::BitOr => a.bvor(&b),
                    BinOp::BitXor => a.bvxor(&b),
                    BinOp::Shl => a.bvshl(&b.resize(a.width())),
                    BinOp::Shr => a.bvlshr(&b.resize(a.width())),
                    BinOp::Eq => a.eq_term(&b),
                    BinOp::Ne => a.ne_term(&b),
                    BinOp::Lt => a.bvult(&b),
                    BinOp::Le => a.bvule(&b),
                    BinOp::Gt => a.bvugt(&b),
                    BinOp::Ge => a.bvuge(&b),
                    BinOp::And => a.and(&b),
                    BinOp::Or => a.or(&b),
                    BinOp::Concat => a.concat(&b),
                })
            }
            Expr::Ternary {
                cond,
                then_e,
                else_e,
                ..
            } => {
                let c = self.lower_value_rec2(cond, env, ctrl, ob, Some(Sort::Bool))?;
                let (a, b) = match self.lower_value_rec2(then_e, env, ctrl, ob, expect) {
                    Ok(a) => {
                        let b = self.lower_value_rec2(else_e, env, ctrl, ob, Some(a.sort()))?;
                        (a, b)
                    }
                    Err(first_err) => {
                        let b = self
                            .lower_value_rec2(else_e, env, ctrl, ob, expect)
                            .map_err(|_| first_err.clone())?;
                        let a = self
                            .lower_value_rec2(then_e, env, ctrl, ob, Some(b.sort()))
                            .map_err(|_| first_err)?;
                        (a, b)
                    }
                };
                let (a, b) = unify_terms(a, b, then_e, else_e)?;
                Ok(c.ite(&a, &b))
            }
            Expr::Cast { ty, arg, span } => {
                let t = self.program.resolve_type(ty)?;
                let texpect = match &t {
                    Type::Bit(w) => Some(Sort::Bv(*w)),
                    Type::Bool => Some(Sort::Bool),
                    _ => None,
                };
                let a = self.lower_value_rec2(arg, env, ctrl, ob, texpect)?;
                match (t, a.sort()) {
                    (Type::Bit(w), Sort::Bv(_)) => Ok(a.resize(w)),
                    (Type::Bit(w), Sort::Bool) => {
                        Ok(a.ite(&Term::bv(w, 1), &Term::bv(w, 0)))
                    }
                    (Type::Bool, Sort::Bv(1)) => Ok(a.eq_term(&Term::bv(1, 1))),
                    _ => Err(Error::new(*span, "unsupported cast")),
                }
            }
        }
    }

    /// ite-chain over stack elements for a boolean per-element attribute.
    fn dyn_elem_bool(&mut self, path: &str, size: u32, index: &Term, attr: &str) -> Term {
        let mut out = Term::ff();
        for i in (0..size).rev() {
            let v = Term::var(self.var(format!("{path}.{i}.{attr}"), Sort::Bool), Sort::Bool);
            let cond = index.eq_term(&Term::bv(index.width(), i as u128));
            out = cond.ite(&v, &out);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// helpers

/// A placeholder control for contexts with no tables/registers (parser).
fn dummy_ctrl() -> ControlDef {
    ControlDef {
        name: "$parser".into(),
        params: vec![],
        actions: vec![],
        tables: vec![],
        registers: vec![],
        locals: vec![],
        apply: AstBlock::default(),
    }
}

/// `hdr.ipv4.ttl` → `hdr.ipv4.$valid`, when the variable is a header field.
///
/// Recognized by shape: header fields live under `hdr.` and are not ghost
/// (`$`-prefixed) components.
fn header_validity_of_field(var: &str) -> Option<String> {
    let (prefix, last) = var.rsplit_once('.')?;
    if !var.starts_with("hdr.") || last.starts_with('$') {
        return None;
    }
    Some(format!("{prefix}.$valid"))
}

fn coerce(t: Term, sort: Sort) -> Term {
    match (t.sort(), sort) {
        (a, b) if a == b => t,
        (Sort::Bv(_), Sort::Bv(w)) => t.resize(w),
        _ => panic!("cannot coerce {} to {}", t.sort(), sort),
    }
}

fn unify_terms(
    a: Term,
    b: Term,
    _ea: &Expr,
    _eb: &Expr,
) -> Result<(Term, Term), Error> {
    match (a.sort(), b.sort()) {
        (x, y) if x == y => Ok((a, b)),
        (Sort::Bv(x), Sort::Bv(y)) => {
            let w = x.max(y);
            Ok((a.resize(w), b.resize(w)))
        }
        _ => Err(Error::new(
            Span::default(),
            format!("cannot unify {} and {}", a.sort(), b.sort()),
        )),
    }
}

/// Evaluate a compile-time constant expression (numbers, consts, arithmetic).
pub fn const_eval(program: &Program, e: &Expr) -> Result<u128, Error> {
    match e {
        Expr::Number { value, .. } => Ok(*value),
        Expr::Bool { value, .. } => Ok(u128::from(*value)),
        Expr::Ident { name, span } => program
            .consts
            .get(name)
            .map(|(_, v)| *v)
            .ok_or_else(|| Error::new(*span, format!("not a constant: {name}"))),
        Expr::Binary { op, lhs, rhs, span } => {
            let a = const_eval(program, lhs)?;
            let b = const_eval(program, rhs)?;
            Ok(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Shl => a << b,
                BinOp::Shr => a >> b,
                BinOp::BitAnd => a & b,
                BinOp::BitOr => a | b,
                BinOp::BitXor => a ^ b,
                _ => return Err(Error::new(*span, "non-constant operator")),
            })
        }
        Expr::Cast { arg, .. } => const_eval(program, arg),
        other => Err(Error::new(other.span(), "not a constant expression")),
    }
}

/// Best-effort source rendering of a key expression for annotations.
fn expr_source(e: &Expr) -> String {
    match e {
        Expr::Number { value, .. } => value.to_string(),
        Expr::Bool { value, .. } => value.to_string(),
        Expr::Ident { name, .. } => name.clone(),
        Expr::Member { base, member, .. } => format!("{}.{member}", expr_source(base)),
        Expr::Index { base, index, .. } => {
            format!("{}[{}]", expr_source(base), expr_source(index))
        }
        Expr::Slice { base, hi, lo, .. } => format!("{}[{hi}:{lo}]", expr_source(base)),
        Expr::Call { func, .. } => format!("{}()", expr_source(func)),
        Expr::Unary { arg, .. } => format!("op({})", expr_source(arg)),
        Expr::Binary { lhs, rhs, .. } => {
            format!("({} . {})", expr_source(lhs), expr_source(rhs))
        }
        Expr::Ternary { .. } => "(?:)".to_string(),
        Expr::Cast { arg, .. } => format!("cast({})", expr_source(arg)),
    }
}

/// Does the expression contain a `.apply()` call?
fn expr_mentions_apply(e: &Expr) -> bool {
    match e {
        Expr::Call { func, args, .. } => {
            if let Expr::Member { member, .. } = func.as_ref() {
                if member == "apply" {
                    return true;
                }
            }
            expr_mentions_apply(func) || args.iter().any(expr_mentions_apply)
        }
        Expr::Member { base, .. } => expr_mentions_apply(base),
        Expr::Unary { arg, .. } => expr_mentions_apply(arg),
        Expr::Binary { lhs, rhs, .. } => expr_mentions_apply(lhs) || expr_mentions_apply(rhs),
        Expr::Index { base, index, .. } => {
            expr_mentions_apply(base) || expr_mentions_apply(index)
        }
        Expr::Slice { base, .. } => expr_mentions_apply(base),
        Expr::Ternary {
            cond,
            then_e,
            else_e,
            ..
        } => {
            expr_mentions_apply(cond)
                || expr_mentions_apply(then_e)
                || expr_mentions_apply(else_e)
        }
        Expr::Cast { arg, .. } => expr_mentions_apply(arg),
        _ => false,
    }
}

trait OptionExprExt {
    fn as_deref2(&self) -> Option<&Expr>;
}
impl OptionExprExt for Option<Expr> {
    fn as_deref2(&self) -> Option<&Expr> {
        self.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::BlockKind;

    pub(crate) const NAT: &str = r#"
        header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
        header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
        struct meta_inner_t { bit<1> do_forward; bit<32> ipv4_sa; bit<32> nhop_ipv4; }
        struct metadata { meta_inner_t meta; }
        struct headers { ethernet_t ethernet; ipv4_t ipv4; }
        parser ParserImpl(packet_in packet, out headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) {
            state start {
                packet.extract(hdr.ethernet);
                transition select(hdr.ethernet.etherType) {
                    0x800: parse_ipv4;
                    default: accept;
                }
            }
            state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
        }
        control ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) {
            action drop_() { mark_to_drop(standard_metadata); }
            action nat_hit_int_to_ext(bit<32> a, bit<9> p) {
                meta.meta.do_forward = 1w1;
                meta.meta.ipv4_sa = a;
                standard_metadata.egress_spec = p;
            }
            table nat {
                key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
                actions = { drop_; nat_hit_int_to_ext; }
                default_action = drop_();
            }
            action set_nhop(bit<32> nhop_ipv4, bit<9> port) {
                meta.meta.nhop_ipv4 = nhop_ipv4;
                standard_metadata.egress_spec = port;
                hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
            }
            table ipv4_lpm {
                key = { meta.meta.nhop_ipv4: lpm; }
                actions = { set_nhop; drop_; }
                default_action = drop_();
            }
            apply {
                nat.apply();
                if (meta.meta.do_forward == 1w1) {
                    ipv4_lpm.apply();
                }
            }
        }
        control egress(inout headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) { apply { } }
        control verifyChecksum(inout headers hdr, inout metadata meta) { apply { } }
        control computeChecksum(inout headers hdr, inout metadata meta) { apply { } }
        control DeparserImpl(packet_out packet, in headers hdr) { apply { packet.emit(hdr.ethernet); } }
        V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
    "#;

    #[test]
    fn lower_nat_example() {
        let program = bf4_p4::frontend(NAT).unwrap();
        let lowered = lower(&program, &LowerOptions::default()).unwrap();
        let cfg = &lowered.cfg;
        assert_eq!(cfg.validate(), Ok(()));
        // Two table sites.
        assert_eq!(cfg.tables.len(), 2);
        assert_eq!(cfg.tables[0].table, "nat");
        assert_eq!(cfg.tables[1].table, "ipv4_lpm");
        // nat has a ternary key with a mask var, and a validity key.
        let nat = &cfg.tables[0];
        assert!(nat.keys[0].is_validity_key);
        assert!(nat.keys[1].mask_var.is_some());
        // Bugs present: key validity on nat (ternary srcAddr of possibly
        // invalid ipv4), ttl access in set_nhop, egress-spec-not-set.
        let bug_kinds: Vec<BugKind> = cfg
            .bug_blocks()
            .into_iter()
            .map(|b| match &cfg.blocks[b].kind {
                BlockKind::Bug(info) => info.kind,
                _ => unreachable!(),
            })
            .collect();
        assert!(bug_kinds.contains(&BugKind::InvalidKeyAccess), "{bug_kinds:?}");
        assert!(bug_kinds.contains(&BugKind::InvalidHeaderAccess), "{bug_kinds:?}");
        assert!(bug_kinds.contains(&BugKind::EgressSpecNotSet), "{bug_kinds:?}");
        // SSA + optimize keep the CFG valid.
        let mut cfg2 = cfg.clone();
        let copies = crate::ssa::to_ssa(&mut cfg2);
        assert_eq!(crate::ssa::ssa_violations(&cfg2), Vec::<std::sync::Arc<str>>::new());
        assert!(copies > 0);
        crate::opt::optimize(&mut cfg2);
        assert_eq!(cfg2.validate(), Ok(()));
    }

    #[test]
    fn lower_egress_part() {
        let program = bf4_p4::frontend(NAT).unwrap();
        let opts = LowerOptions {
            part: PipelinePart::Egress,
            ..Default::default()
        };
        let lowered = lower(&program, &opts).unwrap();
        assert_eq!(lowered.cfg.validate(), Ok(()));
        assert!(lowered.cfg.tables.is_empty());
    }
}
