//! Program slicing over the program dependence graph (§4.1).
//!
//! The PDG unions **data dependences** (def–use over the SSA names) and
//! **control dependences** (computed from post-dominators, per
//! Ferrante–Ottenstein–Warren: a node depends on branch `p` if `p` has a
//! successor the node post-dominates while not post-dominating `p`
//! itself). A slice with respect to a set of root blocks (typically the
//! bug nodes) keeps only the instructions in the backward transitive
//! closure; dropping the rest shrinks the reachability formulas while
//! preserving the reachability of every root (irrelevant branch conditions
//! become unconstrained splits whose disjunction is a tautology).
//!
//! Slicing is also the first step of the paper's **Fixes** algorithm
//! (Algorithm 3), which runs a forward data-flow analysis over the sliced
//! graph to find missing table keys.

use crate::cfg::{BlockId, Cfg, Instr, Terminator};
use bf4_smt::free_vars;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Result of a slice computation.
#[derive(Clone, Debug)]
pub struct SliceInfo {
    /// Kept instructions as `(block, instr index)` pairs.
    pub needed_instrs: HashSet<(BlockId, usize)>,
    /// Blocks whose branch condition is in the slice.
    pub needed_branches: HashSet<BlockId>,
    /// Variables in the slice.
    pub needed_vars: HashSet<Arc<str>>,
    /// Instruction counts before/after (the paper's §4.1 metric).
    pub instrs_before: usize,
    /// Instructions kept.
    pub instrs_after: usize,
}

/// Compute the backward slice of `cfg` with respect to `roots`.
pub fn compute_slice(cfg: &Cfg, roots: &[BlockId]) -> SliceInfo {
    let _sp = bf4_obs::span("ir", "slice");
    // Def map over SSA names; merge variables are defined once per
    // incoming edge block, so this is a multimap.
    let mut def_site: HashMap<Arc<str>, Vec<(BlockId, usize)>> = HashMap::new();
    for (b, blk) in cfg.blocks.iter().enumerate() {
        for (i, ins) in blk.instrs.iter().enumerate() {
            def_site.entry(ins.target().clone()).or_default().push((b, i));
        }
    }

    // Control dependences (block granularity).
    let cdeps = control_dependences(cfg);

    let mut needed_instrs: HashSet<(BlockId, usize)> = HashSet::new();
    let mut needed_branches: HashSet<BlockId> = HashSet::new();
    let mut needed_vars: HashSet<Arc<str>> = HashSet::new();
    let mut needed_blocks: HashSet<BlockId> = HashSet::new();
    let mut var_wl: Vec<Arc<str>> = Vec::new();
    let mut block_wl: Vec<BlockId> = Vec::new();

    for &r in roots {
        if needed_blocks.insert(r) {
            block_wl.push(r);
        }
    }

    loop {
        let mut progressed = false;
        while let Some(b) = block_wl.pop() {
            progressed = true;
            // A needed block pulls in its control dependences.
            if let Some(deps) = cdeps.get(&b) {
                for &p in deps {
                    if needed_branches.insert(p) {
                        if let Terminator::Branch { cond, .. } = &cfg.blocks[p].term {
                            for (v, _) in free_vars(cond) {
                                if needed_vars.insert(v.clone()) {
                                    var_wl.push(v);
                                }
                            }
                        }
                    }
                    if needed_blocks.insert(p) {
                        block_wl.push(p);
                    }
                }
            }
        }
        while let Some(v) = var_wl.pop() {
            progressed = true;
            for &(b, i) in def_site.get(&v).map(|v| v.as_slice()).unwrap_or(&[]) {
                if needed_instrs.insert((b, i)) {
                    if let Instr::Assign { expr, .. } = &cfg.blocks[b].instrs[i] {
                        for (u, _) in free_vars(expr) {
                            if needed_vars.insert(u.clone()) {
                                var_wl.push(u);
                            }
                        }
                    }
                    // The defining block must be reachable in a relevant way:
                    // pull in its control dependences too.
                    if needed_blocks.insert(b) {
                        block_wl.push(b);
                    }
                }
            }
        }
        if !progressed {
            break;
        }
        if var_wl.is_empty() && block_wl.is_empty() {
            break;
        }
    }

    SliceInfo {
        instrs_before: cfg.num_instrs(),
        instrs_after: needed_instrs.len(),
        needed_instrs,
        needed_branches,
        needed_vars,
    }
}

/// Content fingerprint of the backward slice of a single root block,
/// used by the incremental daemon as a change-impact oracle: two program
/// versions whose fingerprints agree for a bug node have byte-identical
/// slices, so the bug's reachability condition cannot have changed.
///
/// The hash covers the kept instructions, the needed branch conditions
/// and — per branch — which side can reach the root (the polarity that
/// enters the reachability formula). Blocks are renumbered locally
/// (sorted global order → 0..n) so edits *outside* the slice that shift
/// global block ids do not perturb the fingerprint.
pub fn slice_fingerprint(cfg: &Cfg, root: BlockId) -> u64 {
    let info = compute_slice(cfg, &[root]);

    // Local renumbering of every block that participates in the slice.
    let mut blocks: Vec<BlockId> = info
        .needed_instrs
        .iter()
        .map(|&(b, _)| b)
        .chain(info.needed_branches.iter().copied())
        .chain(std::iter::once(root))
        .collect();
    blocks.sort_unstable();
    blocks.dedup();
    let local: HashMap<BlockId, usize> =
        blocks.iter().enumerate().map(|(i, &b)| (b, i)).collect();

    // Which blocks can reach the root at all (reverse reachability):
    // captures branch polarity without depending on global ids.
    let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for (b, blk) in cfg.blocks.iter().enumerate() {
        for s in blk.term.successors() {
            preds.entry(s).or_default().push(b);
        }
    }
    let mut reaches: HashSet<BlockId> = HashSet::new();
    let mut wl = vec![root];
    reaches.insert(root);
    while let Some(b) = wl.pop() {
        for &p in preds.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
            if reaches.insert(p) {
                wl.push(p);
            }
        }
    }

    // FNV-1a over a canonical rendering.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |s: &str| {
        for &byte in s.as_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut instrs: Vec<(BlockId, usize)> = info.needed_instrs.iter().copied().collect();
    instrs.sort_unstable();
    for (b, i) in instrs {
        match &cfg.blocks[b].instrs[i] {
            Instr::Assign { var, sort, expr } => {
                feed(&format!("i{}.{i} {var}:{sort:?}={expr};", local[&b]));
            }
            Instr::Havoc { var, sort } => {
                feed(&format!("i{}.{i} {var}:{sort:?}=*;", local[&b]));
            }
        }
    }
    let mut branches: Vec<BlockId> = info.needed_branches.iter().copied().collect();
    branches.sort_unstable();
    for b in branches {
        if let Terminator::Branch { cond, then_to, else_to } = &cfg.blocks[b].term {
            let side = |t: &BlockId| {
                let pol = if reaches.contains(t) { '+' } else { '-' };
                match local.get(t) {
                    Some(l) => format!("{pol}{l}"),
                    None => format!("{pol}_"),
                }
            };
            feed(&format!(
                "b{} ({cond}) t{} e{};",
                local[&b],
                side(then_to),
                side(else_to)
            ));
        }
    }
    feed(&format!("r{}", local[&root]));
    h
}

/// Control dependences per FOW: for each edge `p → s` and each block `n` on
/// the post-dominator chain from `s` up to (excluding) `ipdom(p)`, `n` is
/// control-dependent on `p`.
pub fn control_dependences(cfg: &Cfg) -> HashMap<BlockId, Vec<BlockId>> {
    let (ipdom, vexit) = cfg.postdominators();
    let mut out: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for (p, blk) in cfg.blocks.iter().enumerate() {
        let succs = blk.term.successors();
        if succs.len() < 2 {
            continue;
        }
        let p_pdom = ipdom.get(&p).copied().unwrap_or(vexit);
        for s in succs {
            let mut n = s;
            while n != p_pdom && n != vexit {
                out.entry(n).or_default().push(p);
                n = match ipdom.get(&n) {
                    Some(&x) => x,
                    None => break,
                };
            }
        }
    }
    for v in out.values_mut() {
        v.sort_unstable();
        v.dedup();
    }
    out
}

/// Apply a slice: return a copy of `cfg` with instructions outside the
/// slice removed. Structure (blocks/branches) is preserved, so block ids —
/// including table-site entries and bug nodes — remain valid.
pub fn apply_slice(cfg: &Cfg, info: &SliceInfo) -> Cfg {
    let mut out = cfg.clone();
    for (b, blk) in out.blocks.iter_mut().enumerate() {
        let mut kept = Vec::new();
        for (i, ins) in blk.instrs.drain(..).enumerate() {
            if info.needed_instrs.contains(&(b, i)) {
                kept.push(ins);
            }
        }
        blk.instrs = kept;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Block, BlockKind, BugInfo, BugKind};
    use bf4_smt::{Sort, Term};

    fn assign(var: &str, expr: Term) -> Instr {
        Instr::Assign {
            var: Arc::from(var),
            sort: expr.sort(),
            expr,
        }
    }

    /// b0: x:=1; junk:=2; branch(x==1) → bug | accept
    fn small() -> Cfg {
        let x = Term::var("x", Sort::Bv(8));
        let mut var_sorts = HashMap::new();
        var_sorts.insert(Arc::from("x"), Sort::Bv(8));
        var_sorts.insert(Arc::from("junk"), Sort::Bv(8));
        Cfg {
            blocks: vec![
                Block {
                    instrs: vec![assign("x", Term::bv(8, 1)), assign("junk", Term::bv(8, 2))],
                    term: Terminator::Branch {
                        cond: x.eq_term(&Term::bv(8, 1)),
                        then_to: 1,
                        else_to: 2,
                    },
                    kind: BlockKind::Normal,
                    label: "b0".into(),
                },
                Block {
                    instrs: vec![],
                    term: Terminator::End,
                    kind: BlockKind::Bug(BugInfo {
                        kind: BugKind::InvalidHeaderAccess,
                        description: "t".into(),
                        line: 0,
                        table: None,
                    }),
                    label: "bug".into(),
                },
                Block {
                    instrs: vec![],
                    term: Terminator::End,
                    kind: BlockKind::Accept,
                    label: "acc".into(),
                },
            ],
            entry: 0,
            tables: vec![],
            var_sorts,
            dontcare_marks: vec![],
        }
    }

    #[test]
    fn slice_keeps_branch_data_deps_only() {
        let cfg = small();
        let info = compute_slice(&cfg, &[1]);
        assert!(info.needed_branches.contains(&0));
        assert!(info.needed_vars.contains("x" as &str));
        assert!(!info.needed_vars.contains("junk" as &str));
        assert_eq!(info.instrs_before, 2);
        assert_eq!(info.instrs_after, 1);
        let sliced = apply_slice(&cfg, &info);
        assert_eq!(sliced.blocks[0].instrs.len(), 1);
        assert_eq!(sliced.blocks[0].instrs[0].target().as_ref(), "x");
    }

    #[test]
    fn fingerprint_ignores_edits_outside_the_slice() {
        let base = small();
        // Appending an instruction that feeds nothing in the slice must
        // not perturb the bug's fingerprint.
        let mut edited = small();
        edited.blocks[0]
            .instrs
            .push(assign("junk2", Term::bv(8, 7)));
        assert_eq!(
            slice_fingerprint(&base, 1),
            slice_fingerprint(&edited, 1)
        );
    }

    #[test]
    fn fingerprint_survives_global_block_id_shift() {
        let base = small();
        // Prepend an unrelated entry block: every global id shifts by one,
        // but the slice content is unchanged — the local renumbering must
        // keep the fingerprint stable.
        let mut shifted = small();
        for blk in &mut shifted.blocks {
            match &mut blk.term {
                Terminator::Jump(t) => *t += 1,
                Terminator::Branch { then_to, else_to, .. } => {
                    *then_to += 1;
                    *else_to += 1;
                }
                Terminator::End => {}
            }
        }
        shifted.blocks.insert(
            0,
            Block {
                instrs: vec![assign("pad", Term::bv(8, 9))],
                term: Terminator::Jump(1),
                kind: BlockKind::Normal,
                label: "pad".into(),
            },
        );
        shifted.entry = 0;
        assert_eq!(
            slice_fingerprint(&base, 1),
            slice_fingerprint(&shifted, 2)
        );
    }

    #[test]
    fn fingerprint_sees_relevant_instr_change() {
        let base = small();
        let mut edited = small();
        edited.blocks[0].instrs[0] = assign("x", Term::bv(8, 2));
        assert_ne!(
            slice_fingerprint(&base, 1),
            slice_fingerprint(&edited, 1)
        );
    }

    #[test]
    fn fingerprint_sees_branch_polarity_swap() {
        let base = small();
        let mut edited = small();
        if let Terminator::Branch { then_to, else_to, .. } = &mut edited.blocks[0].term {
            std::mem::swap(then_to, else_to);
        }
        assert_ne!(
            slice_fingerprint(&base, 1),
            slice_fingerprint(&edited, 1)
        );
    }

    #[test]
    fn control_dependence_diamond() {
        // 0 →(c) 1|2; 1→3; 2→3; 3 end. 1 and 2 are cdep on 0; 3 is not.
        let c = Term::var("c", Sort::Bool);
        let mut var_sorts = HashMap::new();
        var_sorts.insert(Arc::from("c"), Sort::Bool);
        let cfg = Cfg {
            blocks: vec![
                Block {
                    instrs: vec![],
                    term: Terminator::Branch {
                        cond: c,
                        then_to: 1,
                        else_to: 2,
                    },
                    kind: BlockKind::Normal,
                    label: "b0".into(),
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Jump(3),
                    kind: BlockKind::Normal,
                    label: "b1".into(),
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Jump(3),
                    kind: BlockKind::Normal,
                    label: "b2".into(),
                },
                Block {
                    instrs: vec![],
                    term: Terminator::End,
                    kind: BlockKind::Accept,
                    label: "b3".into(),
                },
            ],
            entry: 0,
            tables: vec![],
            var_sorts,
            dontcare_marks: vec![],
        };
        let cd = control_dependences(&cfg);
        assert_eq!(cd.get(&1), Some(&vec![0]));
        assert_eq!(cd.get(&2), Some(&vec![0]));
        assert_eq!(cd.get(&3), None);
    }

    #[test]
    fn terminal_bug_is_control_dependent_on_its_guard() {
        let cfg = small();
        let cd = control_dependences(&cfg);
        assert_eq!(cd.get(&1), Some(&vec![0]));
        assert_eq!(cd.get(&2), Some(&vec![0]));
    }
}
