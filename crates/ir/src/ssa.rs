//! Static single assignment by passification.
//!
//! Instead of phi nodes, merge points get fresh versions with *edge copies*
//! (`x@3 := x@1` inserted on the incoming edge), which keeps every
//! instruction a plain assignment — exactly what the forward
//! reachability-condition generator wants (each assignment contributes one
//! equality to the path formula, à la Flanagan–Saxe).
//!
//! Versioned names are `<base>@<n>`; version 0 is the base name itself.
//! Variables whose only definition is a `Havoc` keep their base name: a
//! havoc definition is indistinguishable from the unconstrained version-0
//! variable, and this stability is what lets the verification core refer to
//! table-site control variables (`pcn.*`, havoc'd exactly once) by their
//! original names in inferred annotations.

use crate::cfg::{Block, BlockId, BlockKind, Cfg, Instr, Terminator};
use bf4_smt::{substitute, Sort, Term};
use std::collections::HashMap;
use std::sync::Arc;

/// Convert a CFG to SSA form in place. Returns the number of merge copies
/// inserted (a useful metric and test hook).
pub fn to_ssa(cfg: &mut Cfg) -> usize {
    let _sp = bf4_obs::span("ir", "ssa");
    // Count definitions per base variable; single-def havocs stay stable.
    let mut def_count: HashMap<Arc<str>, (usize, bool)> = HashMap::new(); // (count, all_havoc)
    for b in &cfg.blocks {
        for i in &b.instrs {
            let e = def_count.entry(i.target().clone()).or_insert((0, true));
            e.0 += 1;
            if matches!(i, Instr::Assign { .. }) {
                e.1 = false;
            }
        }
    }
    let stable = |v: &Arc<str>| -> bool {
        matches!(def_count.get(v), Some((1, true)))
    };

    let order = cfg.topo_order();
    let preds = cfg.predecessors();
    let mut version_counter: HashMap<Arc<str>, u32> = HashMap::new();
    let mut exit_envs: HashMap<BlockId, HashMap<Arc<str>, Arc<str>>> = HashMap::new();
    let mut copies_inserted = 0usize;

    // New sorts discovered for versioned names.
    let mut new_sorts: Vec<(Arc<str>, Sort)> = Vec::new();

    // Map base → fresh version name.
    let fresh = |base: &Arc<str>,
                     version_counter: &mut HashMap<Arc<str>, u32>|
     -> Arc<str> {
        let c = version_counter.entry(base.clone()).or_insert(0);
        *c += 1;
        Arc::from(format!("{base}@{c}"))
    };

    // Table-site metadata rewriting: entry-block env applied to key exprs.
    let site_entries: Vec<(usize, BlockId)> = cfg
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| (i, t.entry_block))
        .collect();

    for &b in &order {
        // Merge predecessor envs.
        let mut env: HashMap<Arc<str>, Arc<str>> = HashMap::new();
        let bpreds: Vec<BlockId> = preds[b]
            .iter()
            .copied()
            .filter(|p| exit_envs.contains_key(p))
            .collect();
        match bpreds.len() {
            0 => {}
            1 => env = exit_envs[&bpreds[0]].clone(),
            _ => {
                // Union of keys.
                let mut keys: Vec<Arc<str>> = Vec::new();
                for p in &bpreds {
                    for k in exit_envs[p].keys() {
                        if !keys.contains(k) {
                            keys.push(k.clone());
                        }
                    }
                }
                keys.sort();
                let mut merge_copies: Vec<(Arc<str>, Arc<str>)> = Vec::new(); // (new, base)
                for k in keys {
                    let versions: Vec<Arc<str>> = bpreds
                        .iter()
                        .map(|p| exit_envs[p].get(&k).cloned().unwrap_or_else(|| k.clone()))
                        .collect();
                    if versions.windows(2).all(|w| w[0] == w[1]) {
                        env.insert(k.clone(), versions[0].clone());
                    } else {
                        let nv = fresh(&k, &mut version_counter);
                        let sort = cfg.var_sorts[&k];
                        new_sorts.push((nv.clone(), sort));
                        env.insert(k.clone(), nv.clone());
                        merge_copies.push((nv, k.clone()));
                    }
                }
                if !merge_copies.is_empty() {
                    // One edge block per predecessor carrying the copies.
                    for &p in &bpreds {
                        let copies: Vec<Instr> = merge_copies
                            .iter()
                            .map(|(nv, base)| {
                                let src = exit_envs[&p]
                                    .get(base)
                                    .cloned()
                                    .unwrap_or_else(|| base.clone());
                                let sort = cfg.var_sorts[base];
                                copies_inserted += 1;
                                Instr::Assign {
                                    var: nv.clone(),
                                    sort,
                                    expr: Term::var(src, sort),
                                }
                            })
                            .collect();
                        let eb = cfg.blocks.len();
                        cfg.blocks.push(Block {
                            instrs: copies,
                            term: Terminator::Jump(b),
                            kind: BlockKind::Normal,
                            label: format!("ssa-edge:{p}->{b}"),
                        });
                        retarget(&mut cfg.blocks[p].term, b, eb);
                    }
                }
            }
        }

        // Rewrite table-site key expressions with the env at site entry.
        for &(si, eb) in &site_entries {
            if eb == b && !env.is_empty() {
                let map = env_to_map(&env, &cfg.var_sorts);
                for k in &mut cfg.tables[si].keys {
                    k.expr = substitute(&k.expr, &map);
                    k.validity = substitute(&k.validity, &map);
                }
            }
        }

        // Rewrite instructions.
        let mut instrs = std::mem::take(&mut cfg.blocks[b].instrs);
        for ins in &mut instrs {
            match ins {
                Instr::Assign { var, sort, expr } => {
                    let map = env_to_map(&env, &cfg.var_sorts);
                    *expr = substitute(expr, &map);
                    if stable(var) {
                        env.remove(var);
                    } else {
                        let nv = fresh(var, &mut version_counter);
                        new_sorts.push((nv.clone(), *sort));
                        env.insert(var.clone(), nv.clone());
                        *var = nv;
                    }
                }
                Instr::Havoc { var, sort } => {
                    if stable(var) {
                        env.remove(var);
                    } else {
                        let nv = fresh(var, &mut version_counter);
                        new_sorts.push((nv.clone(), *sort));
                        env.insert(var.clone(), nv.clone());
                        *var = nv;
                    }
                }
            }
        }
        cfg.blocks[b].instrs = instrs;

        // Rewrite the branch condition.
        let term = cfg.blocks[b].term.clone();
        if let Terminator::Branch {
            cond,
            then_to,
            else_to,
        } = term
        {
            let map = env_to_map(&env, &cfg.var_sorts);
            cfg.blocks[b].term = Terminator::Branch {
                cond: substitute(&cond, &map),
                then_to,
                else_to,
            };
        }
        exit_envs.insert(b, env);
    }

    for (v, s) in new_sorts {
        cfg.var_sorts.insert(v, s);
    }
    // Unreachable blocks (dead continuations after `exit` or parser
    // overflow) were never renamed; clear them so they cannot shadow SSA
    // names. They contribute to no reachability condition. Reachability is
    // recomputed because SSA edge blocks were appended during the pass.
    let reachable: std::collections::HashSet<BlockId> =
        cfg.topo_order().into_iter().collect();
    for (i, b) in cfg.blocks.iter_mut().enumerate() {
        if !reachable.contains(&i) {
            b.instrs.clear();
        }
    }
    copies_inserted
}

fn env_to_map(
    env: &HashMap<Arc<str>, Arc<str>>,
    sorts: &HashMap<Arc<str>, Sort>,
) -> HashMap<Arc<str>, Term> {
    env.iter()
        .map(|(base, ver)| {
            let sort = sorts[base];
            (base.clone(), Term::var(ver.clone(), sort))
        })
        .collect()
}

fn retarget(term: &mut Terminator, from: BlockId, to: BlockId) {
    match term {
        Terminator::Jump(t) => {
            if *t == from {
                *t = to;
            }
        }
        Terminator::Branch {
            then_to, else_to, ..
        } => {
            if *then_to == from {
                *then_to = to;
            }
            if *else_to == from {
                *else_to = to;
            }
        }
        Terminator::End => {}
    }
}

/// Check the (dynamic) SSA invariant: every variable is defined at most
/// once across the whole CFG, except merge variables, which are defined
/// exactly once in *each* edge-copy block feeding their join (disjoint
/// paths — dynamic single assignment). Returns offending names (empty =
/// valid).
pub fn ssa_violations(cfg: &Cfg) -> Vec<Arc<str>> {
    let mut defs: HashMap<Arc<str>, usize> = HashMap::new();
    let mut edge_defs: HashMap<Arc<str>, Vec<BlockId>> = HashMap::new();
    let reachable: std::collections::HashSet<BlockId> = cfg.topo_order().into_iter().collect();
    for (bid, b) in cfg.blocks.iter().enumerate() {
        if !reachable.contains(&bid) {
            continue;
        }
        let is_edge = b.label.starts_with("ssa-edge:");
        for i in &b.instrs {
            if is_edge {
                edge_defs.entry(i.target().clone()).or_default().push(bid);
            } else {
                *defs.entry(i.target().clone()).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<Arc<str>> = defs
        .iter()
        .filter(|(v, c)| **c > 1 || (**c == 1 && edge_defs.contains_key(*v)))
        .map(|(v, _)| v.clone())
        .collect();
    // Edge-copy defs of the same variable must all target the same join.
    for (v, blocks) in &edge_defs {
        let targets: Vec<BlockId> = blocks
            .iter()
            .filter_map(|&b| match cfg.blocks[b].term {
                Terminator::Jump(t) => Some(t),
                _ => None,
            })
            .collect();
        if targets.windows(2).any(|w| w[0] != w[1]) {
            out.push(v.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Block, BlockKind};
    use bf4_smt::Sort;

    fn assign(var: &str, expr: Term) -> Instr {
        Instr::Assign {
            var: Arc::from(var),
            sort: expr.sort(),
            expr,
        }
    }

    /// if (c) { x := 1 } else { x := 2 }; y := x
    fn diamond_cfg() -> Cfg {
        let c = Term::var("c", Sort::Bool);
        let mut var_sorts = HashMap::new();
        var_sorts.insert(Arc::from("c"), Sort::Bool);
        var_sorts.insert(Arc::from("x"), Sort::Bv(8));
        var_sorts.insert(Arc::from("y"), Sort::Bv(8));
        Cfg {
            blocks: vec![
                Block {
                    instrs: vec![],
                    term: Terminator::Branch {
                        cond: c,
                        then_to: 1,
                        else_to: 2,
                    },
                    kind: BlockKind::Normal,
                    label: "b0".into(),
                },
                Block {
                    instrs: vec![assign("x", Term::bv(8, 1))],
                    term: Terminator::Jump(3),
                    kind: BlockKind::Normal,
                    label: "b1".into(),
                },
                Block {
                    instrs: vec![assign("x", Term::bv(8, 2))],
                    term: Terminator::Jump(3),
                    kind: BlockKind::Normal,
                    label: "b2".into(),
                },
                Block {
                    instrs: vec![assign("y", Term::var("x", Sort::Bv(8)))],
                    term: Terminator::End,
                    kind: BlockKind::Accept,
                    label: "b3".into(),
                },
            ],
            entry: 0,
            tables: vec![],
            var_sorts,
            dontcare_marks: vec![],
        }
    }

    #[test]
    fn ssa_single_assignment_holds() {
        let mut cfg = diamond_cfg();
        let copies = to_ssa(&mut cfg);
        assert!(copies >= 2, "expected edge copies for x at the join");
        assert_eq!(ssa_violations(&cfg), Vec::<Arc<str>>::new());
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn ssa_merge_reads_merged_version() {
        let mut cfg = diamond_cfg();
        to_ssa(&mut cfg);
        // y's RHS must reference a versioned x, not the base name.
        let y_assign = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find_map(|i| match i {
                Instr::Assign { var, expr, .. } if var.starts_with("y") => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        let fv = bf4_smt::free_vars(&y_assign);
        assert_eq!(fv.len(), 1);
        let name = fv.keys().next().unwrap();
        assert!(name.starts_with("x@"), "y reads {name}");
    }

    #[test]
    fn single_havoc_keeps_base_name() {
        let mut var_sorts = HashMap::new();
        var_sorts.insert(Arc::from("h"), Sort::Bv(4));
        var_sorts.insert(Arc::from("o"), Sort::Bv(4));
        let mut cfg = Cfg {
            blocks: vec![Block {
                instrs: vec![
                    Instr::Havoc {
                        var: Arc::from("h"),
                        sort: Sort::Bv(4),
                    },
                    assign("o", Term::var("h", Sort::Bv(4))),
                ],
                term: Terminator::End,
                kind: BlockKind::Accept,
                label: "b".into(),
            }],
            entry: 0,
            tables: vec![],
            var_sorts,
            dontcare_marks: vec![],
        };
        to_ssa(&mut cfg);
        let i0 = &cfg.blocks[0].instrs[0];
        assert_eq!(i0.target().as_ref(), "h");
    }

    #[test]
    fn straightline_reassignment_versions() {
        let mut var_sorts = HashMap::new();
        var_sorts.insert(Arc::from("x"), Sort::Bv(8));
        let x = || Term::var("x", Sort::Bv(8));
        let mut cfg = Cfg {
            blocks: vec![Block {
                instrs: vec![
                    assign("x", Term::bv(8, 1)),
                    assign("x", x().bvadd(&Term::bv(8, 1))),
                ],
                term: Terminator::End,
                kind: BlockKind::Accept,
                label: "b".into(),
            }],
            entry: 0,
            tables: vec![],
            var_sorts,
            dontcare_marks: vec![],
        };
        to_ssa(&mut cfg);
        assert_eq!(ssa_violations(&cfg), Vec::<Arc<str>>::new());
        // Second assignment must read the first version: x@2 := x@1 + 1.
        let Instr::Assign { var, expr, .. } = &cfg.blocks[0].instrs[1] else {
            panic!();
        };
        assert_eq!(var.as_ref(), "x@2");
        let fv = bf4_smt::free_vars(expr);
        assert_eq!(fv.keys().next().unwrap().as_ref(), "x@1");
    }
}
