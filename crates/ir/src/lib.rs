#![warn(missing_docs)]

//! # bf4-ir — mid-level IR and analysis infrastructure for bf4
//!
//! This crate implements the program-transformation half of the paper's
//! pipeline (Fig. 3):
//!
//! * [`cfg`] — the control-flow graph over [`bf4_smt::Term`] expressions,
//!   with topological ordering, dominators and post-dominators;
//! * [`lower`] — lowering from the type-checked P4 program to the CFG:
//!   parser-state unrolling, **table-call expansion** into havoc'd abstract
//!   flow entries (Fig. 4/5), and **bug instrumentation** (invalid header
//!   access, `egress_spec` not set, out-of-bounds register / header-stack
//!   access, destructive header copies with `dontCare` semantics);
//! * [`ssa`] — conversion to static single assignment by passification
//!   (edge copies instead of phi nodes), which keeps weakest-precondition
//!   formulas compact (Flanagan–Saxe);
//! * [`opt`] — constant/copy propagation and dead-code elimination;
//! * [`slice`] — program slicing over the program dependence graph
//!   (control + data dependences), used both to speed up verification
//!   (§4.1) and by the Fixes algorithm (§4.3).

pub mod cfg;
pub mod lower;
pub mod opt;
pub mod slice;
pub mod ssa;

pub use cfg::{
    BlockId, BlockKind, BugInfo, BugKind, Cfg, Instr, TableActionInfo, TableKeyInfo, TableSite,
    Terminator,
};
pub use lower::{lower, LowerOptions, Lowered};
