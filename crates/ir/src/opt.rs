//! Classic compiler optimizations over the SSA CFG (§4.1 "Making
//! verification faster"): constant propagation, copy propagation and dead
//! code elimination. All three shrink the equalities that end up in the
//! reachability formulas.

use crate::cfg::{Cfg, Instr, Terminator};
use bf4_smt::{free_vars, substitute, Term, TermNode};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Constant + copy propagation. Requires SSA (each name defined once);
/// propagates constants and variable copies into every later use, including
/// branch conditions and table-site key expressions. Returns the number of
/// propagated definitions.
pub fn propagate(cfg: &mut Cfg) -> usize {
    let order = cfg.topo_order();
    // A global substitution map is sound only for single-definition names;
    // merge variables (one definition per incoming edge block) must not be
    // propagated through.
    let mut def_count: HashMap<Arc<str>, usize> = HashMap::new();
    for blk in &cfg.blocks {
        for ins in &blk.instrs {
            *def_count.entry(ins.target().clone()).or_insert(0) += 1;
        }
    }
    let mut map: HashMap<Arc<str>, Term> = HashMap::new();
    let mut count = 0usize;
    for &b in &order {
        let mut instrs = std::mem::take(&mut cfg.blocks[b].instrs);
        for ins in &mut instrs {
            if let Instr::Assign { var, expr, .. } = ins {
                let rewritten = substitute(expr, &map);
                *expr = rewritten.clone();
                if def_count.get(var) == Some(&1) {
                    match rewritten.node() {
                        TermNode::Const(_) | TermNode::Var(..) => {
                            map.insert(var.clone(), rewritten);
                            count += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        cfg.blocks[b].instrs = instrs;
        if let Terminator::Branch {
            cond,
            then_to,
            else_to,
        } = cfg.blocks[b].term.clone()
        {
            cfg.blocks[b].term = Terminator::Branch {
                cond: substitute(&cond, &map),
                then_to,
                else_to,
            };
        }
    }
    for t in &mut cfg.tables {
        for k in &mut t.keys {
            k.expr = substitute(&k.expr, &map);
            k.validity = substitute(&k.validity, &map);
        }
    }
    count
}

/// Dead code elimination: drop assignments and havocs whose target is never
/// read by any kept instruction, branch condition or table-site metadata.
/// Returns the number of removed instructions.
pub fn dce(cfg: &mut Cfg) -> usize {
    // Roots: branch conditions, table key expressions / validity terms, and
    // the control variables the verification core will reference.
    let mut live: HashSet<Arc<str>> = HashSet::new();
    let mut worklist: Vec<Arc<str>> = Vec::new();
    let mark = |t: &Term, live: &mut HashSet<Arc<str>>, wl: &mut Vec<Arc<str>>| {
        for (v, _) in free_vars(t) {
            if live.insert(v.clone()) {
                wl.push(v);
            }
        }
    };
    for b in &cfg.blocks {
        if let Terminator::Branch { cond, .. } = &b.term {
            mark(cond, &mut live, &mut worklist);
        }
    }
    for t in &cfg.tables {
        for k in &t.keys {
            mark(&k.expr, &mut live, &mut worklist);
            mark(&k.validity, &mut live, &mut worklist);
        }
        for v in t.control_vars() {
            if live.insert(v.clone()) {
                worklist.push(v);
            }
        }
        for v in [&t.reach_var, &t.action_run_var] {
            if live.insert(v.clone()) {
                worklist.push(v.clone());
            }
        }
    }
    // Def map; merge variables have one RHS per incoming edge block.
    let mut def_rhs: HashMap<Arc<str>, Vec<Term>> = HashMap::new();
    for b in &cfg.blocks {
        for i in &b.instrs {
            if let Instr::Assign { var, expr, .. } = i {
                def_rhs.entry(var.clone()).or_default().push(expr.clone());
            }
        }
    }
    // Transitive closure of reads.
    while let Some(v) = worklist.pop() {
        if let Some(rhss) = def_rhs.get(&v) {
            for rhs in rhss {
                for (u, _) in free_vars(rhs) {
                    if live.insert(u.clone()) {
                        worklist.push(u);
                    }
                }
            }
        }
    }
    // Drop dead instructions.
    let mut removed = 0usize;
    for b in &mut cfg.blocks {
        let before = b.instrs.len();
        b.instrs.retain(|i| live.contains(i.target()));
        removed += before - b.instrs.len();
    }
    removed
}

/// Collapse branches whose two successors are identical into jumps, and
/// thread through empty pass-through blocks. Purely structural cleanup;
/// preserves all reachability conditions. Returns number of simplified
/// terminators.
pub fn simplify_cfg(cfg: &mut Cfg) -> usize {
    let mut changed = 0usize;
    // Branch with equal targets → jump.
    for b in 0..cfg.blocks.len() {
        if let Terminator::Branch {
            then_to, else_to, ..
        } = cfg.blocks[b].term
        {
            if then_to == else_to {
                cfg.blocks[b].term = Terminator::Jump(then_to);
                changed += 1;
            }
        }
    }
    // Thread jumps through empty normal blocks (that are not table entries
    // or dontCare marks — those carry identity).
    let protected: HashSet<usize> = cfg
        .tables
        .iter()
        .map(|t| t.entry_block)
        .chain(cfg.dontcare_marks.iter().copied())
        .collect();
    let target_of = |cfg: &Cfg, b: usize| -> Option<usize> {
        if protected.contains(&b) {
            return None;
        }
        let blk = &cfg.blocks[b];
        if blk.instrs.is_empty() {
            if let Terminator::Jump(t) = blk.term {
                if t != b {
                    return Some(t);
                }
            }
        }
        None
    };
    for b in 0..cfg.blocks.len() {
        let mut term = cfg.blocks[b].term.clone();
        let mut local = 0;
        match &mut term {
            Terminator::Jump(t) => {
                while let Some(nt) = target_of(cfg, *t) {
                    *t = nt;
                    local += 1;
                    if local > cfg.blocks.len() {
                        break;
                    }
                }
            }
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                while let Some(nt) = target_of(cfg, *then_to) {
                    *then_to = nt;
                    local += 1;
                    if local > cfg.blocks.len() {
                        break;
                    }
                }
                while let Some(nt) = target_of(cfg, *else_to) {
                    *else_to = nt;
                    local += 1;
                    if local > cfg.blocks.len() {
                        break;
                    }
                }
            }
            Terminator::End => {}
        }
        changed += local;
        cfg.blocks[b].term = term;
    }
    changed
}

/// Run the standard optimization pipeline to a fixed point (bounded).
pub fn optimize(cfg: &mut Cfg) {
    let _sp = bf4_obs::span("ir", "optimize");
    for _ in 0..4 {
        let a = propagate(cfg);
        let b = dce(cfg);
        let c = simplify_cfg(cfg);
        if a + b + c == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Block, BlockKind};
    use bf4_smt::Sort;

    fn assign(var: &str, expr: Term) -> Instr {
        Instr::Assign {
            var: Arc::from(var),
            sort: expr.sort(),
            expr,
        }
    }

    fn linear(instrs: Vec<Instr>, cond: Term) -> Cfg {
        let mut var_sorts = HashMap::new();
        for i in &instrs {
            var_sorts.insert(i.target().clone(), i.sort());
        }
        for (v, s) in free_vars(&cond) {
            var_sorts.insert(v, s);
        }
        Cfg {
            blocks: vec![
                Block {
                    instrs,
                    term: Terminator::Branch {
                        cond,
                        then_to: 1,
                        else_to: 2,
                    },
                    kind: BlockKind::Normal,
                    label: "b0".into(),
                },
                Block {
                    instrs: vec![],
                    term: Terminator::End,
                    kind: BlockKind::Accept,
                    label: "acc".into(),
                },
                Block {
                    instrs: vec![],
                    term: Terminator::End,
                    kind: BlockKind::Reject,
                    label: "rej".into(),
                },
            ],
            entry: 0,
            tables: vec![],
            var_sorts,
            dontcare_marks: vec![],
        }
    }

    #[test]
    fn const_prop_folds_branch() {
        // x := 5; y := x + 1; branch (y == 6) — must fold to true.
        let x = Term::var("x", Sort::Bv(8));
        let y = Term::var("y", Sort::Bv(8));
        let cfg0 = linear(
            vec![
                assign("x", Term::bv(8, 5)),
                assign("y", x.bvadd(&Term::bv(8, 1))),
            ],
            y.eq_term(&Term::bv(8, 6)),
        );
        let mut cfg = cfg0;
        propagate(&mut cfg);
        match &cfg.blocks[0].term {
            Terminator::Branch { cond, .. } => assert!(cond.is_true()),
            _ => panic!(),
        }
    }

    #[test]
    fn dce_removes_unread() {
        let x = Term::var("x", Sort::Bv(8));
        let mut cfg = linear(
            vec![
                assign("dead", Term::bv(8, 7)),
                assign("x", Term::bv(8, 5)),
            ],
            x.eq_term(&Term::bv(8, 5)),
        );
        let removed = dce(&mut cfg);
        assert_eq!(removed, 1);
        assert_eq!(cfg.blocks[0].instrs.len(), 1);
    }

    #[test]
    fn dce_keeps_transitive_reads() {
        let a = Term::var("a", Sort::Bv(8));
        let b = Term::var("b", Sort::Bv(8));
        let mut cfg = linear(
            vec![
                assign("a", Term::bv(8, 1)),
                assign("b", a.bvadd(&Term::bv(8, 1))),
            ],
            b.eq_term(&Term::bv(8, 2)),
        );
        assert_eq!(dce(&mut cfg), 0);
    }

    #[test]
    fn simplify_equal_branch() {
        let c = Term::var("c", Sort::Bool);
        let mut var_sorts = HashMap::new();
        var_sorts.insert(Arc::from("c"), Sort::Bool);
        let mut cfg = Cfg {
            blocks: vec![
                Block {
                    instrs: vec![],
                    term: Terminator::Branch {
                        cond: c,
                        then_to: 1,
                        else_to: 1,
                    },
                    kind: BlockKind::Normal,
                    label: "b0".into(),
                },
                Block {
                    instrs: vec![],
                    term: Terminator::End,
                    kind: BlockKind::Accept,
                    label: "acc".into(),
                },
            ],
            entry: 0,
            tables: vec![],
            var_sorts,
            dontcare_marks: vec![],
        };
        assert!(simplify_cfg(&mut cfg) >= 1);
        assert!(matches!(cfg.blocks[0].term, Terminator::Jump(1)));
    }
}
