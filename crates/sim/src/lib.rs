#![warn(missing_docs)]

//! # bf4-sim — a concrete V1Model dataplane interpreter
//!
//! Executes a lowered (pre-SSA) [`bf4_ir::Cfg`] on concrete state: packets
//! are assignments to the variables the parser extracts, tables hold
//! concrete [`Rule`]s matched with real `exact`/`ternary`/`lpm`/`range`
//! semantics, and every instrumented bug check runs for real — reaching a
//! `Bug` terminal *is* the dynamic bug detector.
//!
//! This substitutes for the paper's hardware/bmv2 targets. Its roles:
//!
//! * **counterexample replay** — a model from the static verifier is
//!   turned into a packet + single-rule snapshot and re-executed, which
//!   must reach the same bug;
//! * **differential oracle** — the global-correctness theorem (Thm 7.5)
//!   states that any snapshot accepted by the shim has no bug-reaching
//!   packet; integration tests fuzz packets against accepted snapshots and
//!   assert the interpreter never hits a bug terminal;
//! * **examples** — the quickstart runs packets through `simple_nat`.

use bf4_ir::{BlockId, BlockKind, BugInfo, Cfg, Instr, TableSite, Terminator};
use bf4_smt::{eval, Assignment, Sort, Term, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// A concrete table rule.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Key values, one per table key, in declaration order.
    pub key_values: Vec<u128>,
    /// Key masks: ignored for `exact`; `ternary`/`lpm` bitmasks; for
    /// `range` this is the *high* bound.
    pub key_masks: Vec<u128>,
    /// Action name (must be one of the table's actions).
    pub action: String,
    /// Action data in parameter order.
    pub params: Vec<u128>,
}

/// Concrete table contents: rules in priority order (first match wins).
pub type RuleSet = HashMap<String, Vec<Rule>>;

/// Where nondeterministic values come from.
pub enum HavocSource {
    /// Seeded RNG (packet fuzzing).
    Rng(Box<StdRng>),
    /// Replay a static-verifier model: a havoc of `v` consumes the next
    /// unconsumed SSA version of `v` present in the model (`v`, `v@1`,
    /// `v@2`, ... in ascending order), falling back to zero.
    Replay {
        /// The model.
        model: Assignment,
        /// Per-base-name consumption cursor.
        cursors: HashMap<Arc<str>, u32>,
    },
    /// Everything zero (deterministic baseline).
    Zero,
}

impl HavocSource {
    /// Seeded RNG source.
    pub fn rng(seed: u64) -> HavocSource {
        HavocSource::Rng(Box::new(StdRng::seed_from_u64(seed)))
    }

    /// Replay source from a model.
    pub fn replay(model: Assignment) -> HavocSource {
        HavocSource::Replay {
            model,
            cursors: HashMap::new(),
        }
    }

    fn draw(&mut self, var: &Arc<str>, sort: Sort) -> Value {
        match self {
            HavocSource::Rng(rng) => match sort {
                Sort::Bool => Value::Bool(rng.random()),
                Sort::Bv(w) => {
                    let raw: u128 = ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128;
                    Value::bv(w, raw)
                }
            },
            HavocSource::Replay { model, cursors } => {
                let cur = cursors.entry(var.clone()).or_insert(0);
                // try versions >= *cur, starting with the bare name at 0
                loop {
                    let name: Arc<str> = if *cur == 0 {
                        var.clone()
                    } else {
                        Arc::from(format!("{var}@{cur}"))
                    };
                    *cur += 1;
                    if let Some(v) = model.get(&name) {
                        if v.sort() == sort {
                            return *v;
                        }
                    }
                    if *cur > 64 {
                        return default_value(sort);
                    }
                }
            }
            HavocSource::Zero => default_value(sort),
        }
    }
}

/// Wrap an interpreter failure into a terminal [`RunResult`].
fn error_result(msg: String, trace: Vec<BlockId>, state: Assignment) -> RunResult {
    let egress_spec = state
        .get("standard_metadata.egress_spec" as &str)
        .map(|v| v.as_bits());
    RunResult {
        outcome: Outcome::Error(SimError::Eval(msg)),
        trace,
        state,
        egress_spec,
    }
}

fn default_value(sort: Sort) -> Value {
    match sort {
        Sort::Bool => Value::Bool(false),
        Sort::Bv(w) => Value::bv(w, 0),
    }
}

/// An internal interpreter failure, reported as an [`Outcome`] instead of
/// a panic so corpus-wide sweeps survive one bad program or snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// Expression evaluation failed (sort mismatch, malformed term, ...).
    Eval(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// How a run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Packet accepted (left the pipeline with defined behavior).
    Accept,
    /// Parser rejected the packet.
    Reject,
    /// A bug was triggered.
    Bug(BugInfo),
    /// A `dontCare` no-op branch was crossed and the run then ended well.
    DontCareAccept,
    /// Internal: an infeasible sink was reached (indicates an interpreter
    /// or lowering inconsistency — tests assert this never happens).
    Infeasible,
    /// The interpreter itself failed; the trace and state cover the run up
    /// to the failing instruction.
    Error(SimError),
}

/// Result of interpreting one packet.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Final outcome.
    pub outcome: Outcome,
    /// Block trace (block ids in execution order).
    pub trace: Vec<BlockId>,
    /// Final variable state.
    pub state: Assignment,
    /// `egress_spec` value at the end, when set.
    pub egress_spec: Option<u128>,
}

/// The interpreter.
pub struct Interpreter<'c> {
    cfg: &'c Cfg,
    site_by_entry: HashMap<BlockId, usize>,
    /// Table rules.
    pub rules: RuleSet,
    max_steps: usize,
}

impl<'c> Interpreter<'c> {
    /// Create an interpreter over a lowered (pre-SSA) CFG.
    pub fn new(cfg: &'c Cfg, rules: RuleSet) -> Interpreter<'c> {
        let site_by_entry = cfg
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.entry_block, i))
            .collect();
        Interpreter {
            cfg,
            site_by_entry,
            rules,
            max_steps: 100_000,
        }
    }

    /// Run one packet. `inputs` pre-pins variables (packet fields, ports);
    /// all other havocs draw from `source`.
    ///
    /// Variables read before any write (fields of never-extracted headers,
    /// register contents) are materialized lazily from `inputs`/`source` —
    /// modeling the "stale residue from previous packets" semantics that
    /// makes invalid-header reads exploitable on real targets.
    pub fn run(&self, inputs: &Assignment, source: &mut HavocSource) -> RunResult {
        let mut state: Assignment = Assignment::new();
        let mut trace = Vec::new();
        let mut crossed_dontcare = false;
        let mut block = self.cfg.entry;
        let mut steps = 0usize;
        loop {
            steps += 1;
            assert!(steps < self.max_steps, "interpreter ran away");
            trace.push(block);
            // Table lookup pinning.
            let mut pinned: HashMap<Arc<str>, Value> = HashMap::new();
            if let Some(&site_idx) = self.site_by_entry.get(&block) {
                let site = &self.cfg.tables[site_idx];
                for k in &site.keys {
                    self.materialize(&k.expr, &mut state, inputs, source);
                }
                self.lookup(site, &state, &mut pinned);
            }
            for ins in &self.cfg.blocks[block].instrs {
                match ins {
                    Instr::Assign { var, expr, .. } => {
                        self.materialize(expr, &mut state, inputs, source);
                        let v = match eval(expr, &state) {
                            Ok(v) => v,
                            Err(e) => {
                                return error_result(
                                    format!("eval {expr} in block {block}: {e}"),
                                    trace,
                                    state,
                                )
                            }
                        };
                        state.insert(var.clone(), v);
                    }
                    Instr::Havoc { var, sort } => {
                        let v = if let Some(p) = pinned.get(var) {
                            *p
                        } else if let Some(i) = inputs.get(var) {
                            *i
                        } else {
                            source.draw(var, *sort)
                        };
                        state.insert(var.clone(), v);
                    }
                }
            }
            if self.cfg.dontcare_marks.contains(&block) {
                crossed_dontcare = true;
            }
            match &self.cfg.blocks[block].term {
                Terminator::End => {
                    let outcome = match &self.cfg.blocks[block].kind {
                        BlockKind::Accept => {
                            if crossed_dontcare {
                                Outcome::DontCareAccept
                            } else {
                                Outcome::Accept
                            }
                        }
                        BlockKind::Reject => Outcome::Reject,
                        BlockKind::Bug(info) => Outcome::Bug(info.clone()),
                        BlockKind::Infeasible => Outcome::Infeasible,
                        BlockKind::DontCare => Outcome::DontCareAccept,
                        BlockKind::Normal => unreachable!("normal terminal"),
                    };
                    let egress_spec = state
                        .get("standard_metadata.egress_spec" as &str)
                        .map(|v| v.as_bits());
                    return RunResult {
                        outcome,
                        trace,
                        state,
                        egress_spec,
                    };
                }
                Terminator::Jump(t) => block = *t,
                Terminator::Branch {
                    cond,
                    then_to,
                    else_to,
                } => {
                    self.materialize(cond, &mut state, inputs, source);
                    let c = match eval(cond, &state) {
                        Ok(v) => v.as_bool(),
                        Err(e) => {
                            return error_result(
                                format!("branch eval {cond}: {e}"),
                                trace,
                                state,
                            )
                        }
                    };
                    block = if c { *then_to } else { *else_to };
                }
            }
        }
    }

    /// Bind any unbound free variables of `t`, preferring `inputs` over
    /// the havoc source (lazy stale-residue materialization).
    fn materialize(
        &self,
        t: &Term,
        state: &mut Assignment,
        inputs: &Assignment,
        source: &mut HavocSource,
    ) {
        for (v, sort) in bf4_smt::free_vars(t) {
            if let std::collections::hash_map::Entry::Vacant(e) = state.entry(v) {
                let val = inputs
                    .get(e.key())
                    .copied()
                    .unwrap_or_else(|| source.draw(e.key(), sort));
                e.insert(val);
            }
        }
    }

    /// Match the current state against a table's rules; pin the flow-entry
    /// variables accordingly.
    fn lookup(&self, site: &TableSite, state: &Assignment, pinned: &mut HashMap<Arc<str>, Value>) {
        let rules = self.rules.get(&site.table).cloned().unwrap_or_default();
        // Evaluate key expressions.
        let key_vals: Vec<Value> = site
            .keys
            .iter()
            .map(|k| eval(&k.expr, state).unwrap_or(default_value(k.expr.sort())))
            .collect();
        let mut hit: Option<&Rule> = None;
        'rules: for r in &rules {
            for (i, k) in site.keys.iter().enumerate() {
                let pkt = match key_vals[i] {
                    Value::Bool(b) => u128::from(b),
                    Value::Bv { bits, .. } => bits,
                };
                let rv = r.key_values.get(i).copied().unwrap_or(0);
                let rm = r.key_masks.get(i).copied().unwrap_or(u128::MAX);
                let matches = match k.match_kind.as_str() {
                    "exact" | "selector" => pkt == rv,
                    "range" => rv <= pkt && pkt <= rm,
                    _ => (pkt & rm) == (rv & rm),
                };
                if !matches {
                    continue 'rules;
                }
            }
            hit = Some(r);
            break;
        }
        let hit_var = site.hit_var.clone();
        match hit {
            Some(r) => {
                pinned.insert(hit_var, Value::Bool(true));
                let action_idx = site
                    .actions
                    .iter()
                    .position(|a| a.name == r.action)
                    .unwrap_or(site.default_action);
                pinned.insert(site.action_var.clone(), Value::bv(8, action_idx as u128));
                for (i, k) in site.keys.iter().enumerate() {
                    let sort = k.expr.sort();
                    let rv = r.key_values.get(i).copied().unwrap_or(0);
                    let val = match sort {
                        Sort::Bool => Value::Bool(rv != 0),
                        Sort::Bv(w) => Value::bv(w, rv),
                    };
                    pinned.insert(k.value_var.clone(), val);
                    if let Some(mv) = &k.mask_var {
                        if let Sort::Bv(w) = sort {
                            let rm = r.key_masks.get(i).copied().unwrap_or(u128::MAX);
                            pinned.insert(mv.clone(), Value::bv(w, rm));
                        }
                    }
                }
                let act = &site.actions[action_idx];
                for (pi, (pv, psort)) in act.param_vars.iter().enumerate() {
                    let raw = r.params.get(pi).copied().unwrap_or(0);
                    let val = match psort {
                        Sort::Bool => Value::Bool(raw != 0),
                        Sort::Bv(w) => Value::bv(*w, raw),
                    };
                    pinned.insert(pv.clone(), val);
                }
            }
            None => {
                pinned.insert(hit_var, Value::Bool(false));
                // Key/action variables on the miss path are never read in a
                // meaningful way, but pin them to zero for determinism.
                pinned.insert(site.action_var.clone(), Value::bv(8, site.default_action as u128));
                for k in &site.keys {
                    pinned.insert(k.value_var.clone(), default_value(k.expr.sort()));
                    if let Some(mv) = &k.mask_var {
                        pinned.insert(mv.clone(), default_value(k.expr.sort()));
                    }
                }
                for a in &site.actions {
                    for (pv, psort) in &a.param_vars {
                        pinned.insert(pv.clone(), default_value(*psort));
                    }
                }
            }
        }
    }
}

/// Build a packet (input assignment) that makes the parser take a chosen
/// path: convenience used by examples — maps `field name -> value` onto the
/// extract-havoc'd variables.
pub fn packet(fields: &[(&str, Sort, u128)]) -> Assignment {
    fields
        .iter()
        .map(|(n, s, v)| {
            let val = match s {
                Sort::Bool => Value::Bool(*v != 0),
                Sort::Bv(w) => Value::bv(*w, *v),
            };
            (Arc::from(*n), val)
        })
        .collect()
}

/// Construct a single-rule snapshot and input packet from a static
/// verifier model over the (pre-SSA-stable) `pcn.*` variables: the model's
/// entry contents become one rule per hit table.
pub fn snapshot_from_model(cfg: &Cfg, model: &Assignment) -> RuleSet {
    let mut rules = RuleSet::new();
    for site in &cfg.tables {
        let hit = matches!(model.get(&site.hit_var), Some(Value::Bool(true)));
        if !hit {
            continue;
        }
        let action_idx = model
            .get(&site.action_var)
            .map(|v| v.as_bits() as usize)
            .unwrap_or(site.default_action)
            .min(site.actions.len().saturating_sub(1));
        let action = &site.actions[action_idx];
        let key_values: Vec<u128> = site
            .keys
            .iter()
            .map(|k| model.get(&k.value_var).map(value_bits).unwrap_or(0))
            .collect();
        let key_masks: Vec<u128> = site
            .keys
            .iter()
            .map(|k| {
                k.mask_var
                    .as_ref()
                    .and_then(|m| model.get(m).map(value_bits))
                    .unwrap_or(u128::MAX)
            })
            .collect();
        let params: Vec<u128> = action
            .param_vars
            .iter()
            .map(|(pv, _)| model.get(pv).map(value_bits).unwrap_or(0))
            .collect();
        rules.entry(site.table.clone()).or_default().push(Rule {
            key_values,
            key_masks,
            action: action.name.clone(),
            params,
        });
    }
    rules
}

fn value_bits(v: &Value) -> u128 {
    match v {
        Value::Bool(b) => u128::from(*b),
        Value::Bv { bits, .. } => *bits,
    }
}

/// The term type re-exported for downstream convenience.
pub use bf4_smt::Term as SimTerm;

#[cfg(test)]
mod tests {
    use super::*;
    use bf4_ir::{lower, BugKind, LowerOptions};

    fn nat_cfg() -> Cfg {
        let program = bf4_p4::frontend(bf4_core::testutil::NAT_SOURCE).unwrap();
        lower(&program, &LowerOptions::default()).unwrap().cfg
    }

    fn eth_ipv4_packet() -> Assignment {
        packet(&[
            ("hdr.ethernet.etherType", Sort::Bv(16), 0x800),
            ("hdr.ethernet.dstAddr", Sort::Bv(48), 0x1111),
            ("hdr.ethernet.srcAddr", Sort::Bv(48), 0x2222),
            ("hdr.ipv4.ttl", Sort::Bv(8), 64),
            ("hdr.ipv4.protocol", Sort::Bv(8), 6),
            ("hdr.ipv4.srcAddr", Sort::Bv(32), 0x0a000001),
            ("hdr.ipv4.dstAddr", Sort::Bv(32), 0x0a000002),
        ])
    }

    #[test]
    fn empty_tables_miss_runs_default_drop() {
        let cfg = nat_cfg();
        let interp = Interpreter::new(&cfg, RuleSet::new());
        let mut src = HavocSource::Zero;
        let r = interp.run(&eth_ipv4_packet(), &mut src);
        // nat misses → default drop_ → egress_spec = 511 → accept.
        assert_eq!(r.outcome, Outcome::Accept, "trace: {:?}", r.trace);
        assert_eq!(r.egress_spec, Some(511));
    }

    #[test]
    fn benign_nat_hit_forwards() {
        let cfg = nat_cfg();
        let mut rules = RuleSet::new();
        rules.insert(
            "nat".into(),
            vec![Rule {
                key_values: vec![1, 0x0a000001],
                key_masks: vec![u128::MAX, 0xffffffff],
                action: "nat_hit_int_to_ext".into(),
                params: vec![0xC0A80001, 7],
            }],
        );
        rules.insert(
            "ipv4_lpm".into(),
            vec![Rule {
                key_values: vec![0],
                key_masks: vec![0], // match-all lpm
                action: "set_nhop".into(),
                params: vec![0x0a000002, 3],
            }],
        );
        let interp = Interpreter::new(&cfg, rules);
        let mut src = HavocSource::Zero;
        let r = interp.run(&eth_ipv4_packet(), &mut src);
        assert_eq!(r.outcome, Outcome::Accept, "trace: {:?}", r.trace);
        assert_eq!(r.egress_spec, Some(3));
        // ttl decremented
        assert_eq!(
            r.state.get("hdr.ipv4.ttl" as &str),
            Some(&Value::bv(8, 63))
        );
    }

    #[test]
    fn faulty_rule_triggers_key_validity_bug() {
        // A nat rule claiming ipv4-invalid with a non-zero srcAddr mask:
        // the §2.1 bug. A non-IPv4 packet matching it must hit the bug
        // terminal.
        let cfg = nat_cfg();
        let mut rules = RuleSet::new();
        rules.insert(
            "nat".into(),
            vec![Rule {
                key_values: vec![0, 0xC0000000],
                key_masks: vec![u128::MAX, 0xff000000],
                action: "nat_hit_int_to_ext".into(),
                params: vec![0, 1],
            }],
        );
        let interp = Interpreter::new(&cfg, rules);
        let mut src = HavocSource::Zero;
        // non-IPv4 packet whose (undefined) srcAddr reads 0xC0xxxxxx:
        let pkt = packet(&[
            ("hdr.ethernet.etherType", Sort::Bv(16), 0x1234),
            ("hdr.ipv4.srcAddr", Sort::Bv(32), 0xC0A80101),
        ]);
        let r = interp.run(&pkt, &mut src);
        match r.outcome {
            Outcome::Bug(info) => assert_eq!(info.kind, BugKind::InvalidKeyAccess),
            other => panic!("expected bug, got {other:?} (trace {:?})", r.trace),
        }
    }

    #[test]
    fn set_nhop_on_non_ipv4_triggers_ttl_bug() {
        // Force do_forward=1 via a nat rule that matches the invalid-ipv4
        // packet with mask 0 (no srcAddr read — legal), then ipv4_lpm's
        // set_nhop decrements ttl of the invalid header: the §2.1 bug.
        let cfg = nat_cfg();
        let mut rules = RuleSet::new();
        rules.insert(
            "nat".into(),
            vec![Rule {
                key_values: vec![0, 0],
                key_masks: vec![u128::MAX, 0],
                action: "nat_hit_int_to_ext".into(),
                params: vec![0, 1],
            }],
        );
        rules.insert(
            "ipv4_lpm".into(),
            vec![Rule {
                key_values: vec![0],
                key_masks: vec![0],
                action: "set_nhop".into(),
                params: vec![0x0a000002, 3],
            }],
        );
        let interp = Interpreter::new(&cfg, rules);
        let mut src = HavocSource::Zero;
        let pkt = packet(&[("hdr.ethernet.etherType", Sort::Bv(16), 0x1234)]);
        let r = interp.run(&pkt, &mut src);
        match r.outcome {
            Outcome::Bug(info) => assert_eq!(info.kind, BugKind::InvalidHeaderAccess),
            other => panic!("expected ttl bug, got {other:?}"),
        }
    }

    #[test]
    fn miss_on_ext_to_int_leaves_egress_unset() {
        let cfg = nat_cfg();
        let mut rules = RuleSet::new();
        rules.insert(
            "nat".into(),
            vec![Rule {
                key_values: vec![1, 0],
                key_masks: vec![u128::MAX, 0],
                action: "nat_miss_ext_to_int".into(),
                params: vec![],
            }],
        );
        let interp = Interpreter::new(&cfg, rules);
        let mut src = HavocSource::Zero;
        let r = interp.run(&eth_ipv4_packet(), &mut src);
        match r.outcome {
            Outcome::Bug(info) => assert_eq!(info.kind, BugKind::EgressSpecNotSet),
            other => panic!("expected egress-spec bug, got {other:?}"),
        }
    }

    #[test]
    fn wrong_sorted_input_is_an_error_outcome_not_a_panic() {
        // A controller handing the interpreter a mis-sorted input used to
        // panic mid-run; it must now surface as `Outcome::Error`.
        let cfg = nat_cfg();
        let interp = Interpreter::new(&cfg, RuleSet::new());
        let mut src = HavocSource::Zero;
        let mut pkt = eth_ipv4_packet();
        pkt.insert(Arc::from("hdr.ethernet.etherType"), Value::Bool(true));
        let r = interp.run(&pkt, &mut src);
        match r.outcome {
            Outcome::Error(SimError::Eval(msg)) => {
                assert!(msg.contains("etherType"), "unexpected message: {msg}")
            }
            other => panic!("expected eval error, got {other:?}"),
        }
        assert!(!r.trace.is_empty(), "trace up to the failure is kept");
    }

    #[test]
    fn counterexample_replay_hits_same_bug_kind() {
        // Static verifier model → snapshot + packet → interpreter reaches
        // a bug of the same kind.
        let program = bf4_p4::frontend(bf4_core::testutil::NAT_SOURCE).unwrap();
        let mut vcfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
        bf4_ir::ssa::to_ssa(&mut vcfg);
        let ra = bf4_core::reach::ReachAnalysis::new(&vcfg);
        let bugs = ra.found_bugs(&vcfg);
        let mut solver = bf4_smt::default_solver();
        let key_bug = bugs
            .iter()
            .find(|b| b.info.kind == BugKind::InvalidKeyAccess)
            .unwrap();
        let model = bf4_core::reach::bug_model(&mut solver, key_bug, &[]).expect("model");
        // Interpreter runs on the *pre-SSA* CFG; pcn.* names are stable.
        let icfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
        let rules = snapshot_from_model(&icfg, &model);
        assert!(!rules.is_empty(), "model should pin a hit rule");
        let interp = Interpreter::new(&icfg, rules);
        let mut src = HavocSource::replay(model);
        let r = interp.run(&Assignment::new(), &mut src);
        match r.outcome {
            Outcome::Bug(info) => assert_eq!(info.kind, BugKind::InvalidKeyAccess),
            other => panic!("replay diverged: {other:?} (trace {:?})", r.trace),
        }
    }
}
