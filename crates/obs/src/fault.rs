//! Deterministic, seeded fault injection for chaos testing.
//!
//! Every failure-handling path in the pipeline (solver backend errors,
//! worker panics, cache I/O errors, journal fsync failures) is guarded by
//! a **named fault site**: a `fault::fire("layer.what")` call that is a
//! single relaxed atomic load while injection is off. A chaos run arms a
//! [`FaultPlan`] — parsed from the `BF4_FAULTS` environment variable or
//! installed programmatically — and each site then decides *per hit*
//! whether to fire, from a pure function of `(seed, site, hit index)`.
//! Two runs that hit a site the same number of times therefore inject
//! exactly the same faults, regardless of wall-clock timing; with a
//! single worker the whole schedule is bit-reproducible.
//!
//! Plan syntax (comma-separated, e.g. in `BF4_FAULTS`):
//!
//! ```text
//! seed=7,smt.backend_error=p0.05,engine.job_panic=@3,smt.*=p0.01
//! ```
//!
//! * `seed=N` — schedule seed (default 0);
//! * `site=pF` — fire each hit independently with probability `F`,
//!   decided by hashing `(seed, site, hit)`;
//! * `site=@N` — fire exactly on the N-th hit (1-based);
//! * `site=%N` — fire on every N-th hit;
//! * `site=on` — fire on every hit;
//! * a site key ending in `*` matches any site with that prefix; exact
//!   rules win over prefix rules.
//!
//! A firing site emits a `fault`-layer span (so `report faults` can audit
//! a `--trace-out` file), a `fault.fired` counter tick and a
//! `BF4_LOG=warn` event. Fire decisions never depend on whether tracing
//! is enabled.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// How a matched site decides whether a given hit fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Fire each hit independently with this probability (seeded, so the
    /// set of firing hit indices is a deterministic function of the plan).
    Probability(f64),
    /// Fire exactly on this 1-based hit index.
    Nth(u64),
    /// Fire on every N-th hit.
    Every(u64),
    /// Fire on every hit.
    Always,
}

/// A parsed fault schedule: a seed plus `(site pattern, trigger)` rules.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every probabilistic fire decision.
    pub seed: u64,
    rules: Vec<(String, Trigger)>,
}

impl FaultPlan {
    /// Parse a plan from the `BF4_FAULTS` syntax (see the module docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault rule `{part}` is not key=value"))?;
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| format!("seed `{value}` is not a u64"))?;
                continue;
            }
            let trigger = match value.as_bytes().first() {
                Some(b'p') => {
                    let p: f64 = value[1..]
                        .parse()
                        .map_err(|_| format!("probability `{value}` is not pF"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability `{value}` outside [0,1]"));
                    }
                    Trigger::Probability(p)
                }
                Some(b'@') => Trigger::Nth(
                    value[1..]
                        .parse()
                        .map_err(|_| format!("hit index `{value}` is not @N"))?,
                ),
                Some(b'%') => {
                    let n: u64 = value[1..]
                        .parse()
                        .map_err(|_| format!("period `{value}` is not %N"))?;
                    if n == 0 {
                        return Err("period %0 is invalid".to_string());
                    }
                    Trigger::Every(n)
                }
                _ if value == "on" => Trigger::Always,
                _ => return Err(format!("unknown trigger `{value}` for site `{key}`")),
            };
            plan.rules.push((key.to_string(), trigger));
        }
        Ok(plan)
    }

    /// Whether the plan has no site rules (and so can never fire).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The trigger governing `site`: an exact rule if present, otherwise
    /// the first matching `prefix*` rule.
    fn trigger_for(&self, site: &str) -> Option<Trigger> {
        if let Some((_, t)) = self.rules.iter().find(|(pat, _)| pat == site) {
            return Some(*t);
        }
        self.rules
            .iter()
            .find(|(pat, _)| {
                pat.ends_with('*') && site.starts_with(&pat[..pat.len() - 1])
            })
            .map(|(_, t)| *t)
    }
}

/// Hit/fire counters of one site, as returned by [`stats`] and [`clear`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteStats {
    /// The site name as passed to [`fire`].
    pub site: String,
    /// How many times the site was reached while a plan was armed.
    pub hits: u64,
    /// How many of those hits injected the fault.
    pub fires: u64,
}

#[derive(Default)]
struct Counters {
    hits: u64,
    fires: u64,
}

struct Active {
    plan: FaultPlan,
    sites: BTreeMap<&'static str, Counters>,
}

/// 0 = not yet initialized from the environment, 1 = disarmed, 2 = armed.
static ARMED: AtomicU8 = AtomicU8::new(0);

fn active_state() -> MutexGuard<'static, Option<Active>> {
    static ACTIVE: OnceLock<Mutex<Option<Active>>> = OnceLock::new();
    ACTIVE
        .get_or_init(|| Mutex::new(None))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// One-time arm-from-environment, so any binary honors `BF4_FAULTS`
/// without explicit wiring. [`install`]/[`clear`] override the result.
fn ensure_env_init() {
    if ARMED.load(Ordering::Relaxed) != 0 {
        return;
    }
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        let plan = std::env::var("BF4_FAULTS")
            .ok()
            .and_then(|spec| match FaultPlan::parse(&spec) {
                Ok(p) => Some(p),
                Err(e) => {
                    crate::error("fault", &format!("ignoring BF4_FAULTS: {e}"));
                    None
                }
            });
        match plan {
            Some(p) if !p.is_empty() => install(p),
            _ => ARMED.store(1, Ordering::Relaxed),
        }
    });
}

/// Arm a fault plan (replacing any previous one; counters reset).
pub fn install(plan: FaultPlan) {
    let armed = !plan.is_empty();
    *active_state() = Some(Active {
        plan,
        sites: BTreeMap::new(),
    });
    ARMED.store(if armed { 2 } else { 1 }, Ordering::Relaxed);
}

/// Disarm injection and return the per-site statistics of the run.
pub fn clear() -> Vec<SiteStats> {
    let taken = active_state().take();
    ARMED.store(1, Ordering::Relaxed);
    taken.map_or_else(Vec::new, |a| site_stats(&a))
}

/// Whether a non-empty plan is currently armed.
pub fn active() -> bool {
    ensure_env_init();
    ARMED.load(Ordering::Relaxed) == 2
}

/// Per-site hit/fire counters of the armed plan (empty when disarmed).
pub fn stats() -> Vec<SiteStats> {
    active_state().as_ref().map_or_else(Vec::new, site_stats)
}

fn site_stats(a: &Active) -> Vec<SiteStats> {
    a.sites
        .iter()
        .map(|(site, c)| SiteStats {
            site: (*site).to_string(),
            hits: c.hits,
            fires: c.fires,
        })
        .collect()
}

/// splitmix64 finalizer — the same mixer the canonical query hash uses.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_site(site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in site.as_bytes() {
        h = mix(h ^ u64::from(b));
    }
    h
}

/// Pure fire decision: depends only on the plan seed, the site name and
/// the 1-based hit index — never on time, threads or prior decisions.
fn decide(seed: u64, site: &str, hit: u64, trigger: Trigger) -> bool {
    match trigger {
        Trigger::Always => true,
        Trigger::Nth(n) => hit == n,
        Trigger::Every(n) => hit.is_multiple_of(n),
        Trigger::Probability(p) => {
            let h = mix(seed ^ hash_site(site) ^ mix(hit));
            ((h >> 11) as f64 / (1u64 << 53) as f64) < p
        }
    }
}

/// Should the fault at `site` be injected now? One relaxed atomic load
/// while injection is off. While armed, every call counts a hit (rule or
/// not), so chaos runs audit which sites a workload actually reaches.
pub fn fire(site: &'static str) -> bool {
    ensure_env_init();
    if ARMED.load(Ordering::Relaxed) != 2 {
        return false;
    }
    let (fired, hit) = {
        let mut guard = active_state();
        let Some(active) = guard.as_mut() else {
            return false;
        };
        let trigger = active.plan.trigger_for(site);
        let seed = active.plan.seed;
        let c = active.sites.entry(site).or_default();
        c.hits += 1;
        let fired = trigger.is_some_and(|t| decide(seed, site, c.hits, t));
        if fired {
            c.fires += 1;
        }
        (fired, c.hits)
    };
    if fired {
        // Visible in all three observability channels: the trace (a
        // `fault`-layer span nested inside whatever job hit the site),
        // the metrics registry, and the leveled event stream.
        let mut sp = crate::span("fault", site);
        if sp.is_active() {
            sp.add_tag("hit", hit.to_string());
        }
        drop(sp);
        crate::counter_add("fault.fired", 1);
        crate::warn("fault", &format!("injected fault at `{site}` (hit {hit})"));
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global plan is process state; every test in this module locks
    // it so cargo's parallel test threads cannot interleave plans.
    fn locked() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn parse_accepts_every_trigger_form() {
        let p = FaultPlan::parse("seed=9, a.b=p0.25, c.d=@3, e.f=%4, g.h=on, smt.*=p0.5")
            .unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(p.trigger_for("a.b"), Some(Trigger::Probability(0.25)));
        assert_eq!(p.trigger_for("c.d"), Some(Trigger::Nth(3)));
        assert_eq!(p.trigger_for("e.f"), Some(Trigger::Every(4)));
        assert_eq!(p.trigger_for("g.h"), Some(Trigger::Always));
        // Prefix rule catches unmatched smt sites; exact rules win.
        assert_eq!(p.trigger_for("smt.timeout"), Some(Trigger::Probability(0.5)));
        assert_eq!(p.trigger_for("other.site"), None);
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        for bad in ["a.b", "a.b=p1.5", "a.b=@x", "a.b=%0", "a.b=maybe", "seed=no"] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn decisions_are_a_pure_function_of_seed_site_and_hit() {
        let picks = |seed: u64| -> Vec<u64> {
            (1..=1000)
                .filter(|&h| decide(seed, "x.y", h, Trigger::Probability(0.1)))
                .collect()
        };
        assert_eq!(picks(7), picks(7), "same seed must replay identically");
        assert_ne!(picks(7), picks(8), "different seeds must differ");
        let n = picks(7).len();
        assert!((50..200).contains(&n), "p0.1 over 1000 hits fired {n} times");
    }

    #[test]
    fn fire_counts_hits_and_fires_deterministically() {
        let _g = locked();
        install(FaultPlan::parse("seed=1,test.every=%3").unwrap());
        let fired: Vec<bool> = (0..9).map(|_| fire("test.every")).collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
        let stats = clear();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].hits, 9);
        assert_eq!(stats[0].fires, 3);
        assert!(!fire("test.every"), "cleared plan must not fire");
    }

    #[test]
    fn unmatched_sites_count_hits_but_never_fire() {
        let _g = locked();
        install(FaultPlan::parse("seed=1,some.site=on").unwrap());
        assert!(!fire("test.unmatched"));
        let stats = clear();
        let s = stats.iter().find(|s| s.site == "test.unmatched").unwrap();
        assert_eq!((s.hits, s.fires), (1, 0));
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = locked();
        install(FaultPlan::parse("test.nth=@2").unwrap());
        let fired: Vec<bool> = (0..5).map(|_| fire("test.nth")).collect();
        assert_eq!(fired, [false, true, false, false, false]);
        clear();
    }
}
