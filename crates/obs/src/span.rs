//! Span-scoped timers with parent/child nesting.
//!
//! A [`span`] call returns an RAII guard; dropping it records a
//! [`SpanRecord`]. Nesting is tracked per thread: the innermost open span
//! on the calling thread becomes the parent of a newly opened one, so the
//! records of one thread always form a forest (every exit matches an
//! enter, and a child's `[ts, ts+dur]` interval lies inside its
//! parent's).
//!
//! Closed spans are buffered thread-locally and flushed into a global
//! registry when the thread's span stack empties, when the buffer grows
//! past a fixed bound, or when the thread exits — so a worker pool's
//! spans are all visible once its threads are joined, without any
//! per-span lock traffic.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// One closed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique span id (nonzero).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Pipeline layer (`frontend`, `ir`, `smt`, `core`, `engine`, `shim`).
    pub layer: &'static str,
    /// Stage or operation name within the layer.
    pub name: String,
    /// Process-unique id of the recording thread.
    pub thread: u64,
    /// Start time in microseconds since the trace epoch.
    pub ts_micros: u64,
    /// Duration in microseconds (`end_micros - ts_micros`, so a child's
    /// interval nests exactly inside its parent's even after truncation).
    pub dur_micros: u64,
    /// Key/value annotations (verdict, cache hit/miss, program name, ...).
    pub tags: Vec<(&'static str, String)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn registry() -> &'static Mutex<Vec<SpanRecord>> {
    static REGISTRY: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turn span collection on or off (off by default). Enabling also pins
/// the trace epoch if this is the first use.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span collection is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drop all buffered spans (current thread and global registry).
pub fn reset_spans() {
    TLS.with(|b| b.borrow_mut().done.clear());
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Flush the calling thread's buffer and drain every span recorded so
/// far. Spans of pool threads are present once those threads have been
/// joined (thread exit flushes); spans still open anywhere are not.
pub fn take_spans() -> Vec<SpanRecord> {
    TLS.with(|b| b.borrow_mut().flush());
    std::mem::take(&mut *registry().lock().unwrap_or_else(PoisonError::into_inner))
}

/// The calling thread's process-unique id, as recorded in
/// [`SpanRecord::thread`].
pub fn current_thread_id() -> u64 {
    TLS.with(|b| b.borrow().thread_id)
}

struct ThreadBuf {
    thread_id: u64,
    /// Ids of the open spans on this thread, outermost first.
    stack: Vec<u64>,
    done: Vec<SpanRecord>,
}

impl ThreadBuf {
    fn flush(&mut self) {
        if self.done.is_empty() {
            return;
        }
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(&mut self.done);
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        thread_id: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        done: Vec::with_capacity(64),
    });

    /// Ambient context tags: every span opened on this thread while a
    /// [`ctx_tag`] guard is live starts with the guard's tag attached.
    static CTX: RefCell<Vec<(&'static str, String)>> = const { RefCell::new(Vec::new()) };
}

/// Push an ambient context tag for the calling thread: every span opened
/// on this thread before the returned guard drops starts with
/// `key = value` attached (the request-ID propagation path — a service
/// opens one guard per request and every pipeline span below inherits
/// it). Inert while span collection is disabled, preserving the
/// one-atomic-load overhead contract.
pub fn ctx_tag(key: &'static str, value: impl Into<String>) -> CtxGuard {
    if !enabled() {
        return CtxGuard { pushed: false };
    }
    CTX.with(|c| c.borrow_mut().push((key, value.into())));
    CtxGuard { pushed: true }
}

/// RAII guard from [`ctx_tag`]; dropping it pops the tag.
pub struct CtxGuard {
    pushed: bool,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if self.pushed {
            CTX.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

/// Flush once the local buffer holds this many closed spans, even while
/// spans are still open (bounds memory on span-heavy jobs).
const FLUSH_AT: usize = 256;

/// Open a span. While collection is disabled this is one atomic load and
/// an inert guard. `layer` names the pipeline layer, `name` the stage or
/// operation; see the JSONL schema in DESIGN.md §9 for the vocabulary.
pub fn span(layer: &'static str, name: impl Into<String>) -> Span {
    if !enabled() {
        return Span(None);
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = TLS.with(|b| {
        let mut b = b.borrow_mut();
        let parent = b.stack.last().copied();
        b.stack.push(id);
        parent
    });
    // Ambient context tags (e.g. a service's request ID) attach at open,
    // before any manual `tag`/`add_tag` call, so callers never collide
    // with them by key.
    let tags = CTX.with(|c| c.borrow().clone());
    let now = Instant::now();
    Span(Some(ActiveSpan {
        id,
        parent,
        layer,
        name: name.into(),
        start: now,
        ts_micros: now.duration_since(epoch()).as_micros() as u64,
        tags,
    }))
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    layer: &'static str,
    name: String,
    start: Instant,
    ts_micros: u64,
    tags: Vec<(&'static str, String)>,
}

/// RAII guard for an open span; dropping it records the span. Obtained
/// from [`span`]; inert when collection was disabled at open time.
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Attach a tag (builder style).
    pub fn tag(mut self, key: &'static str, value: impl Into<String>) -> Span {
        self.add_tag(key, value);
        self
    }

    /// Attach a tag to an already-bound guard (for values only known
    /// later, e.g. a solver verdict).
    pub fn add_tag(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(a) = &mut self.0 {
            a.tags.push((key, value.into()));
        }
    }

    /// Whether this guard is live (collection was enabled at open time).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        // end - start in whole µs of the same epoch-relative clock, so
        // truncation keeps child intervals inside parent intervals.
        let end_micros = (a.start + a.start.elapsed())
            .duration_since(epoch())
            .as_micros() as u64;
        let record = SpanRecord {
            id: a.id,
            parent: a.parent,
            layer: a.layer,
            name: a.name,
            thread: current_thread_id(),
            ts_micros: a.ts_micros,
            dur_micros: end_micros.saturating_sub(a.ts_micros),
            tags: a.tags,
        };
        TLS.with(|b| {
            let mut b = b.borrow_mut();
            // Guards drop in reverse open order on a thread, so the top of
            // the stack is this span; tolerate a forgotten guard by
            // popping down to it.
            while let Some(top) = b.stack.pop() {
                if top == a.id {
                    break;
                }
            }
            b.done.push(record);
            if b.stack.is_empty() || b.done.len() >= FLUSH_AT {
                b.flush();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span tests share the process-global registry; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        set_enabled(false);
        reset_spans();
        {
            let _s = span("test", "outer");
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nesting_sets_parents() {
        let _g = lock();
        set_enabled(true);
        reset_spans();
        {
            let _a = span("test", "a");
            {
                let _b = span("test", "b").tag("k", "v");
            }
        }
        set_enabled(false);
        let mut spans = take_spans();
        spans.retain(|s| s.layer == "test");
        assert_eq!(spans.len(), 2);
        let b = spans.iter().find(|s| s.name == "b").unwrap();
        let a = spans.iter().find(|s| s.name == "a").unwrap();
        assert_eq!(b.parent, Some(a.id));
        assert_eq!(a.parent, None);
        assert_eq!(b.tags, vec![("k", "v".to_string())]);
        assert!(b.ts_micros >= a.ts_micros);
        assert!(b.ts_micros + b.dur_micros <= a.ts_micros + a.dur_micros);
    }

    #[test]
    fn ctx_tags_attach_to_spans_opened_under_the_guard() {
        let _g = lock();
        set_enabled(true);
        reset_spans();
        {
            let _before = span("ctxt", "before");
        }
        {
            let _req = ctx_tag("request", "req-9");
            let _inner = span("ctxt", "inner");
        }
        {
            let _after = span("ctxt", "after");
        }
        set_enabled(false);
        let mut spans = take_spans();
        spans.retain(|s| s.layer == "ctxt");
        let tag_of = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap()
                .tags
                .iter()
                .find(|(k, _)| *k == "request")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(tag_of("before"), None);
        assert_eq!(tag_of("inner"), Some("req-9".to_string()));
        assert_eq!(tag_of("after"), None);
    }

    #[test]
    fn ctx_tag_while_disabled_is_inert() {
        let _g = lock();
        set_enabled(false);
        reset_spans();
        let g = ctx_tag("request", "req-1");
        // Enabling afterwards must not resurrect a tag the guard never
        // pushed; dropping the inert guard must not pop anything.
        set_enabled(true);
        {
            let _live = ctx_tag("request", "req-2");
            drop(g);
            let _s = span("ctxt2", "inner");
        }
        set_enabled(false);
        let mut spans = take_spans();
        spans.retain(|s| s.layer == "ctxt2");
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].tags,
            vec![("request", "req-2".to_string())]
        );
    }

    #[test]
    fn siblings_share_a_parent() {
        let _g = lock();
        set_enabled(true);
        reset_spans();
        {
            let _a = span("test2", "root");
            let _b = span("test2", "s1");
            drop(_b);
            let _c = span("test2", "s2");
        }
        set_enabled(false);
        let mut spans = take_spans();
        spans.retain(|s| s.layer == "test2");
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        for child in ["s1", "s2"] {
            let c = spans.iter().find(|s| s.name == child).unwrap();
            assert_eq!(c.parent, Some(root.id));
        }
    }
}
