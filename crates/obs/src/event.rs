//! Leveled diagnostic events on stderr, filtered by `BF4_LOG`.
//!
//! The pipeline's internal diagnostics (solver degradation, panic
//! isolation, round fallbacks) go through [`event`] instead of bare
//! `eprintln!`. The filter defaults to **off**, so the default stderr
//! stream stays byte-stable for CI diffs; setting `BF4_LOG=warn` (or
//! `error`/`info`/`debug`) turns the matching levels on.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Severity of a diagnostic event, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The pipeline lost work or produced a degraded result.
    Error = 1,
    /// Something recoverable went wrong (retry, fallback, eviction storm).
    Warn = 2,
    /// Coarse progress and configuration notes.
    Info = 3,
    /// Chatty per-item detail.
    Debug = 4,
}

impl Level {
    fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// 0 = off; otherwise the numeric value of the most verbose enabled level.
static FILTER: AtomicU8 = AtomicU8::new(u8::MAX);

fn filter() -> u8 {
    let f = FILTER.load(Ordering::Relaxed);
    if f != u8::MAX {
        return f;
    }
    static FROM_ENV: OnceLock<u8> = OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("BF4_LOG").as_deref() {
        Ok("error") => Level::Error as u8,
        Ok("warn") => Level::Warn as u8,
        Ok("info") => Level::Info as u8,
        Ok("debug") => Level::Debug as u8,
        _ => 0,
    })
}

/// Override the `BF4_LOG` filter programmatically; `None` silences all
/// events.
pub fn set_log_filter(max: Option<Level>) {
    FILTER.store(max.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// Whether an event at `level` would currently be emitted.
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= filter()
}

/// Emit a structured diagnostic line on stderr if `level` passes the
/// filter: `bf4[<level>] <layer>: <message>`.
pub fn event(level: Level, layer: &str, message: &str) {
    if log_enabled(level) {
        eprintln!("bf4[{}] {layer}: {message}", level.label());
    }
}

/// [`event`] at [`Level::Error`].
pub fn error(layer: &str, message: &str) {
    event(Level::Error, layer, message);
}

/// [`event`] at [`Level::Warn`].
pub fn warn(layer: &str, message: &str) {
    event(Level::Warn, layer, message);
}

/// [`event`] at [`Level::Info`].
pub fn info(layer: &str, message: &str) {
    event(Level::Info, layer, message);
}

/// [`event`] at [`Level::Debug`].
pub fn debug(layer: &str, message: &str) {
    event(Level::Debug, layer, message);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_orders_levels() {
        set_log_filter(Some(Level::Warn));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_log_filter(None);
        assert!(!log_enabled(Level::Error));
    }
}
