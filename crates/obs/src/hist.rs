//! The shared latency histogram: log2 buckets over microseconds.
//!
//! Promoted from `bf4-engine` so the engine's per-stage roll-ups, the
//! shim's per-update percentiles and the global metrics registry all use
//! one quantile code path.

use std::time::Duration;

/// A log2-bucketed latency histogram over microseconds: bucket `i` counts
/// samples with `2^i <= micros < 2^(i+1)` (bucket 0 also takes sub-µs
/// samples). 40 buckets cover up to ~12 days, far beyond any stage.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 40],
    count: u64,
    total_micros: u128,
    max_micros: u128,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 40],
            count: 0,
            total_micros: 0,
            max_micros: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        let micros = d.as_micros();
        let idx = (128 - u128::leading_zeros(micros.max(1)) - 1).min(39) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_micros += other.total_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn total(&self) -> Duration {
        Duration::from_micros(self.total_micros.min(u64::MAX as u128) as u64)
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.total_micros / self.count as u128) as u64)
    }

    /// Largest sample seen.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros.min(u64::MAX as u128) as u64)
    }

    /// Upper bound (exclusive, in µs) of the smallest bucket prefix holding
    /// at least `q` (0..=1) of the samples — a coarse quantile.
    pub fn quantile_bound_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1u64 << (i as u32 + 1).min(63);
            }
        }
        1u64 << 40
    }

    /// Convenience: the coarse quantile as a [`Duration`].
    pub fn quantile_bound(&self, q: f64) -> Duration {
        Duration::from_micros(self.quantile_bound_micros(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(5));
        h.record(Duration::from_micros(1000));
        assert_eq!(h.count(), 3);
        assert_eq!(h.total(), Duration::from_micros(1008));
        assert_eq!(h.mean(), Duration::from_micros(336));
        assert_eq!(h.max(), Duration::from_micros(1000));
        // Two of three samples are <= 8us.
        assert!(h.quantile_bound_micros(0.5) <= 8);
        let mut h2 = Histogram::default();
        h2.record(Duration::from_micros(7));
        h.merge(&h2);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantile_on_empty_histogram_is_zero() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile_bound_micros(q), 0);
        }
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn quantile_on_single_sample_brackets_it_at_every_q() {
        let mut h = Histogram::default();
        h.record(Duration::from_micros(100));
        // 100µs lives in bucket 6 (64..128): every nonzero quantile must
        // return the same exclusive upper bound, and it must actually
        // bound the sample (q=0 degenerates to the first occupied prefix
        // of size zero, i.e. bucket 0).
        for q in [0.01, 0.5, 0.99, 1.0] {
            let bound = h.quantile_bound_micros(q);
            assert_eq!(bound, 128, "q={q}");
            assert!(bound > 100);
        }
    }

    #[test]
    fn quantile_on_zero_duration_sample_uses_first_bucket() {
        let mut h = Histogram::default();
        h.record(Duration::ZERO);
        // Sub-µs samples land in bucket 0, whose exclusive bound is 2.
        assert_eq!(h.quantile_bound_micros(1.0), 2);
    }

    #[test]
    fn quantile_saturates_in_the_last_bucket() {
        let mut h = Histogram::default();
        // ~584942 years of microseconds: leading_zeros clamps this into
        // bucket 39, and the reported bound saturates at 2^40 without
        // shifting past 63 bits.
        h.record(Duration::from_secs(u64::MAX / 2_000_000));
        assert_eq!(h.quantile_bound_micros(0.5), 1u64 << 40);
        assert_eq!(h.quantile_bound_micros(1.0), 1u64 << 40);
        // The moments still see the true (un-bucketed) magnitudes.
        assert!(h.max() >= Duration::from_secs(u64::MAX / 2_000_001));
    }

    #[test]
    fn quantile_bound_duration_matches_micros() {
        let mut h = Histogram::default();
        h.record(Duration::from_micros(10));
        assert_eq!(
            h.quantile_bound(0.9),
            Duration::from_micros(h.quantile_bound_micros(0.9))
        );
    }
}
