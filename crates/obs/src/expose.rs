//! Prometheus text-exposition rendering of a [`MetricsSnapshot`].
//!
//! The daemon serves this both as a `metrics` op on its framed protocol
//! and over the optional `--metrics-addr` HTTP responder; `bf4 top` and
//! the ci.sh smoke parse it back with [`parse`], which is also the lint
//! (`report expose-lint`) — render and parse share one name grammar, so
//! an invalid exposition can never ship silently.
//!
//! Mapping (documented in DESIGN.md §14): a counter renders as a
//! `counter`, a gauge as a `gauge`, and a histogram as a `summary` with
//! `quantile` labels 0.5/0.9/0.99 plus `_sum`/`_count` series and a
//! `_max` gauge. All durations are **microseconds** — the registry's
//! native unit; the `_micros` suffix in histogram names keeps that
//! visible. Metric names are the registry names with `.` (and any other
//! charset violation) mapped to `_`, under a `bf4_` prefix.

use crate::metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Map a registry name (`smt.queries`) onto the exposition charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`) under the `bf4_` prefix.
pub fn metric_name(registry_name: &str) -> String {
    let mut out = String::with_capacity(registry_name.len() + 4);
    out.push_str("bf4_");
    for c in registry_name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a snapshot in Prometheus text-exposition format (version
/// 0.0.4). Deterministic: series are emitted in registry (sorted name)
/// order.
pub fn render(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &s.counters {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &s.gauges {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &s.hists {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", h.p50_micros);
        let _ = writeln!(out, "{n}{{quantile=\"0.9\"}} {}", h.p90_micros);
        let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {}", h.p99_micros);
        let _ = writeln!(out, "{n}_sum {}", h.sum_micros);
        let _ = writeln!(out, "{n}_count {}", h.count);
        let _ = writeln!(out, "# TYPE {n}_max gauge");
        let _ = writeln!(out, "{n}_max {}", h.max_micros);
    }
    out
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (for summary series, includes `_sum`/`_count` etc.).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed exposition: the `# TYPE` declarations and every sample.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    /// Declared metric types by name.
    pub types: BTreeMap<String, String>,
    /// Samples in source order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The value of the sample with `name` whose labels contain every
    /// pair of `want` (for label-free series pass `&[]`).
    pub fn value(&self, name: &str, want: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && want.iter().all(|(k, v)| {
                        s.labels.iter().any(|(lk, lv)| lk == k && lv == v)
                    })
            })
            .map(|s| s.value)
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse (and thereby validate) a text exposition. Every sample's metric
/// must have a preceding `# TYPE` declaration — a summary's `_sum`,
/// `_count` and `_max` series resolve to their base declaration — names
/// must match the exposition grammar, and values must be finite numbers.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        let err = |msg: &str| format!("line {}: {msg}: {line}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(ty), None) = (it.next(), it.next(), it.next()) else {
                return Err(err("malformed TYPE line"));
            };
            if !valid_name(name) {
                return Err(err("invalid metric name in TYPE"));
            }
            if !matches!(ty, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                return Err(err("unknown metric type"));
            }
            if out.types.insert(name.to_string(), ty.to_string()).is_some() {
                return Err(err("duplicate TYPE declaration"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let sample = parse_sample(line).map_err(|m| err(&m))?;
        let declared = out.types.contains_key(&sample.name)
            || ["_sum", "_count", "_max"].iter().any(|suf| {
                sample
                    .name
                    .strip_suffix(suf)
                    .is_some_and(|base| out.types.contains_key(base))
            });
        if !declared {
            return Err(err("sample without TYPE declaration"));
        }
        out.samples.push(sample);
    }
    if out.samples.is_empty() {
        return Err("exposition holds no samples".to_string());
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            if close < open {
                return Err("unterminated label set".to_string());
            }
            (
                (&line[..open], parse_labels(&line[open + 1..close])?),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut it = line.split_whitespace();
            let (Some(name), Some(v), None) = (it.next(), it.next(), it.next()) else {
                return Err("expected `name value`".to_string());
            };
            ((name, Vec::new()), v)
        }
    };
    let (name, labels) = head;
    if !valid_name(name) {
        return Err("invalid metric name".to_string());
    }
    let value: f64 = value.parse().map_err(|_| "bad sample value".to_string())?;
    if !value.is_finite() {
        return Err("non-finite sample value".to_string());
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').ok_or("label without `=`")?;
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or("unquoted label value")?;
        if !valid_name(k) {
            return Err("invalid label name".to_string());
        }
        labels.push((k.to_string(), v.replace("\\\"", "\"")));
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::metrics::HistSummary;
    use std::time::Duration;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut h = Histogram::default();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(900));
        let mut s = MetricsSnapshot::default();
        s.counters.insert("daemon.requests", 7);
        s.counters.insert("smt.queries", 42);
        s.gauges.insert("slo.active_alerts", 1);
        s.hists.insert("daemon.request_micros", HistSummary::of(&h));
        s
    }

    #[test]
    fn render_parses_back_with_every_series_present() {
        let text = render(&sample_snapshot());
        let exp = parse(&text).unwrap();
        assert_eq!(exp.types.get("bf4_daemon_requests").unwrap(), "counter");
        assert_eq!(exp.types.get("bf4_slo_active_alerts").unwrap(), "gauge");
        assert_eq!(
            exp.types.get("bf4_daemon_request_micros").unwrap(),
            "summary"
        );
        assert_eq!(exp.value("bf4_daemon_requests", &[]), Some(7.0));
        assert_eq!(exp.value("bf4_smt_queries", &[]), Some(42.0));
        assert_eq!(
            exp.value("bf4_daemon_request_micros", &[("quantile", "0.5")]),
            Some(128.0)
        );
        assert_eq!(
            exp.value("bf4_daemon_request_micros", &[("quantile", "0.99")]),
            Some(1024.0)
        );
        assert_eq!(exp.value("bf4_daemon_request_micros_count", &[]), Some(2.0));
        assert_eq!(
            exp.value("bf4_daemon_request_micros_sum", &[]),
            Some(1000.0)
        );
        assert_eq!(exp.value("bf4_daemon_request_micros_max", &[]), Some(900.0));
    }

    #[test]
    fn metric_names_are_sanitized_deterministically() {
        assert_eq!(metric_name("smt.queries"), "bf4_smt_queries");
        assert_eq!(metric_name("a-b c.d"), "bf4_a_b_c_d");
        assert!(valid_name(&metric_name("9starts.with.digit")));
    }

    #[test]
    fn parse_rejects_malformed_expositions() {
        for bad in [
            "",                                  // no samples
            "bf4_x 1\n",                         // sample without TYPE
            "# TYPE bf4_x counter\nbf4_x one\n", // non-numeric value
            "# TYPE bf4_x counter\nbf4_x\n",     // missing value
            "# TYPE bf4_x wat\nbf4_x 1\n",       // unknown type
            "# TYPE 9x counter\n9x 1\n",         // bad name
            "# TYPE bf4_x counter\nbf4_x{q=\"1\" 1\n", // unterminated labels
            "# TYPE bf4_x counter\n# TYPE bf4_x counter\nbf4_x 1\n", // dup TYPE
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn untyped_samples_of_a_summary_resolve_to_the_base_declaration() {
        let text = "# TYPE bf4_h summary\nbf4_h{quantile=\"0.5\"} 3\nbf4_h_sum 9\nbf4_h_count 2\n";
        let exp = parse(text).unwrap();
        assert_eq!(exp.value("bf4_h_sum", &[]), Some(9.0));
        assert_eq!(exp.value("bf4_h", &[("quantile", "0.5")]), Some(3.0));
        assert_eq!(exp.value("bf4_h", &[("quantile", "0.9")]), None);
    }
}
