//! `tsdb.bf4t` — a persistent per-request time-series.
//!
//! The daemon appends one record per submission so latency / verdict /
//! cache / degradation trends survive restarts. The file format follows
//! the persistent query cache's WAL discipline (DESIGN.md §10), re-stated
//! here because `bf4-obs` sits below `bf4-engine`:
//!
//! * one record per line: a JSON object (fixed key set, parsed with
//!   [`crate::json`]) followed by ` #<16 lowercase hex>` — an FNV-1a
//!   checksum of the payload. Verification is canonical-strict: anything
//!   but exactly that shape is corrupt;
//! * loads salvage per line — a torn tail, a bit flip or a truncated
//!   record drops that line (counted), never the file;
//! * appends are plain `O_APPEND` writes (no fsync per request — the
//!   checksum makes torn tails detectable, and losing the last samples
//!   of a crashed daemon is acceptable for telemetry);
//! * a size cap turns the file into a ring: when an append pushes the
//!   file past `cap_bytes`, the newest records are rewritten into a
//!   fresh file (tmp + fsync + atomic rename) down to half the cap, so
//!   the series is bounded but always ends "now".

use crate::json::{self, Value};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// The time-series file name inside `--cache-dir`.
pub const TSDB_FILE: &str = "tsdb.bf4t";

/// Default ring cap in bytes (~4 MiB ≈ tens of thousands of requests).
pub const DEFAULT_CAP_BYTES: u64 = 4 * 1024 * 1024;

/// One per-request record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Wall-clock milliseconds since the unix epoch (set by the daemon).
    pub ts_ms: u64,
    /// The request ID minted by the daemon (`req-<n>`).
    pub req: String,
    /// Program name submitted.
    pub program: String,
    /// Request wall time in microseconds.
    pub wall_micros: u64,
    /// Bugs found (round 1).
    pub bugs: u64,
    /// Bugs remaining after fixes.
    pub after_fixes: u64,
    /// Bugs left undecided (solver Unknown) — the unknown-rate numerator.
    pub undecided: u64,
    /// Round-1 verdicts reused from the store.
    pub skips: u64,
    /// Round-1 verdicts re-verified.
    pub reverified: u64,
    /// Query-cache hits during this request.
    pub cache_hits: u64,
    /// Cache hits answered by warm-started entries.
    pub warm_hits: u64,
    /// Whether any pipeline stage degraded.
    pub degraded: bool,
}

impl Sample {
    /// Render the record's JSON payload (no checksum, no newline).
    /// Key order is fixed so a record's bytes — and hence its checksum —
    /// are deterministic for a given sample.
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"ts_ms\":{},\"req\":{},\"program\":{},\"wall_micros\":{},\"bugs\":{},\
             \"after_fixes\":{},\"undecided\":{},\"skips\":{},\"reverified\":{},\
             \"cache_hits\":{},\"warm_hits\":{},\"degraded\":{}}}",
            self.ts_ms,
            json::escape(&self.req),
            json::escape(&self.program),
            self.wall_micros,
            self.bugs,
            self.after_fixes,
            self.undecided,
            self.skips,
            self.reverified,
            self.cache_hits,
            self.warm_hits,
            self.degraded,
        );
        s
    }

    /// Parse one checksummed line back; `None` for anything corrupt.
    pub fn parse_line(line: &str) -> Option<Sample> {
        let payload = verify_line(line)?;
        let v = json::parse(payload).ok()?;
        let obj = v.as_obj()?;
        if obj.len() != 12 {
            return None;
        }
        let num = |k: &str| obj.get(k).and_then(Value::as_u64);
        Some(Sample {
            ts_ms: num("ts_ms")?,
            req: obj.get("req")?.as_str()?.to_string(),
            program: obj.get("program")?.as_str()?.to_string(),
            wall_micros: num("wall_micros")?,
            bugs: num("bugs")?,
            after_fixes: num("after_fixes")?,
            undecided: num("undecided")?,
            skips: num("skips")?,
            reverified: num("reverified")?,
            cache_hits: num("cache_hits")?,
            warm_hits: num("warm_hits")?,
            degraded: match obj.get("degraded")? {
                Value::Bool(b) => *b,
                _ => return None,
            },
        })
    }
}

/// FNV-1a over the payload bytes (same constants as the engine's WAL).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checksum a payload into its on-disk line (with trailing newline).
fn checksummed(payload: &str) -> String {
    format!("{payload} #{:016x}\n", fnv1a(payload.as_bytes()))
}

/// Split a line into its payload iff the checksum verifies
/// canonically (exactly 16 lowercase hex digits after ` #`).
fn verify_line(line: &str) -> Option<&str> {
    let (payload, sum) = line.rsplit_once(" #")?;
    if sum.len() != 16 || !sum.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()) {
        return None;
    }
    (u64::from_str_radix(sum, 16).ok()? == fnv1a(payload.as_bytes())).then_some(payload)
}

/// What a load salvaged.
#[derive(Clone, Debug, Default)]
pub struct LoadOutcome {
    /// Records recovered, oldest first.
    pub samples: Vec<Sample>,
    /// Lines dropped as torn / flipped / malformed.
    pub corrupt_records: u64,
}

/// Load every valid record from a time-series file. A missing file is an
/// empty series; each bad line is dropped and counted, never fatal.
pub fn load(path: &Path) -> io::Result<LoadOutcome> {
    let mut out = LoadOutcome::default();
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    }
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        match Sample::parse_line(line) {
            Some(s) => out.samples.push(s),
            None => out.corrupt_records += 1,
        }
    }
    Ok(out)
}

/// The append handle: one file, one cap.
#[derive(Debug)]
pub struct Tsdb {
    path: PathBuf,
    cap_bytes: u64,
}

impl Tsdb {
    /// Open (lazily — the file is created on first append) a series at
    /// `path` with ring cap `cap_bytes` (0 means [`DEFAULT_CAP_BYTES`]).
    pub fn open(path: impl Into<PathBuf>, cap_bytes: u64) -> Tsdb {
        Tsdb {
            path: path.into(),
            cap_bytes: if cap_bytes == 0 {
                DEFAULT_CAP_BYTES
            } else {
                cap_bytes
            },
        }
    }

    /// The series path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record; compacts the ring first when the file is at
    /// cap. Returns whether a compaction ran.
    pub fn append(&self, sample: &Sample) -> io::Result<bool> {
        let mut line = checksummed(&sample.render());
        let compacted = match std::fs::metadata(&self.path) {
            Ok(m) if m.len() + line.len() as u64 > self.cap_bytes => {
                self.compact()?;
                true
            }
            _ => false,
        };
        // A crash can leave the file ending mid-line; gluing the new
        // record onto that torn tail would corrupt *this* record too, so
        // terminate the tail first (the fragment then salvages away as
        // one corrupt line instead of two).
        if !self.ends_with_newline()? {
            line.insert(0, '\n');
        }
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        f.write_all(line.as_bytes())?;
        Ok(compacted)
    }

    /// Whether the file is absent, empty, or ends in a record terminator.
    fn ends_with_newline(&self) -> io::Result<bool> {
        use std::io::Seek as _;
        let mut f = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(true),
            Err(e) => return Err(e),
        };
        let len = f.metadata()?.len();
        if len == 0 {
            return Ok(true);
        }
        f.seek(io::SeekFrom::End(-1))?;
        let mut last = [0u8; 1];
        f.read_exact(&mut last)?;
        Ok(last[0] == b'\n')
    }

    /// Rewrite the file keeping only the newest records that fit in half
    /// the cap: tmp + fsync + atomic rename, so a crash mid-compaction
    /// leaves either the old file or the new one, never a torn mix.
    fn compact(&self) -> io::Result<()> {
        let keep_budget = self.cap_bytes / 2;
        let loaded = load(&self.path)?;
        let mut kept: Vec<String> = Vec::new();
        let mut bytes = 0u64;
        for s in loaded.samples.iter().rev() {
            let line = checksummed(&s.render());
            if bytes + line.len() as u64 > keep_budget {
                break;
            }
            bytes += line.len() as u64;
            kept.push(line);
        }
        kept.reverse();
        let tmp = self.path.with_extension("bf4t.tmp");
        {
            let mut f = File::create(&tmp)?;
            for line in &kept {
                f.write_all(line.as_bytes())?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Sample {
        Sample {
            ts_ms: 1_700_000_000_000 + n,
            req: format!("req-{n}"),
            program: "nat".to_string(),
            wall_micros: 1000 + n,
            bugs: 5,
            after_fixes: 0,
            undecided: u64::from(n.is_multiple_of(7)),
            skips: n % 3,
            reverified: 5 - n % 3,
            cache_hits: 2 * n,
            warm_hits: n,
            degraded: n.is_multiple_of(5),
        }
    }

    #[test]
    fn append_then_load_round_trips_in_order() {
        let dir = std::env::temp_dir().join("bf4-tsdb-rt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let db = Tsdb::open(dir.join(TSDB_FILE), 0);
        for n in 1..=5 {
            db.append(&sample(n)).unwrap();
        }
        let out = load(db.path()).unwrap();
        assert_eq!(out.corrupt_records, 0);
        assert_eq!(
            out.samples,
            (1..=5).map(sample).collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_flipped_lines_are_dropped_and_counted() {
        let dir = std::env::temp_dir().join("bf4-tsdb-salvage");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(TSDB_FILE);
        let db = Tsdb::open(&path, 0);
        db.append(&sample(1)).unwrap();
        db.append(&sample(2)).unwrap();
        // Flip one byte of the second record, then tear a third append
        // mid-line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let idx = text.rfind("req-2").unwrap();
        text.replace_range(idx..idx + 5, "req-9");
        text.push_str(&checksummed(&sample(3).render())[..20]);
        std::fs::write(&path, &text).unwrap();
        let out = load(&path).unwrap();
        assert_eq!(out.corrupt_records, 2);
        assert_eq!(out.samples, vec![sample(1)]);
        // The series keeps accepting appends after salvage.
        db.append(&sample(4)).unwrap();
        let out = load(&path).unwrap();
        assert_eq!(out.samples.last().unwrap().req, "req-4");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_compaction_bounds_the_file_and_keeps_the_newest() {
        let dir = std::env::temp_dir().join("bf4-tsdb-ring");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let line_len = checksummed(&sample(1).render()).len() as u64;
        let cap = line_len * 6;
        let db = Tsdb::open(dir.join(TSDB_FILE), cap);
        let mut compactions = 0;
        for n in 1..=40 {
            if db.append(&sample(n)).unwrap() {
                compactions += 1;
            }
        }
        assert!(compactions > 0, "the ring never compacted");
        assert!(std::fs::metadata(db.path()).unwrap().len() <= cap);
        let out = load(db.path()).unwrap();
        assert_eq!(out.corrupt_records, 0);
        assert_eq!(out.samples.last().unwrap().req, "req-40");
        // Contiguous newest suffix: strictly increasing reqs ending at 40.
        let first = 41 - out.samples.len() as u64;
        assert_eq!(
            out.samples,
            (first..=40).map(sample).collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaped_program_names_survive_the_round_trip() {
        let mut s = sample(1);
        s.program = "we\"ird\nname\t∆".to_string();
        let line = checksummed(&s.render());
        assert_eq!(Sample::parse_line(line.trim_end()), Some(s));
    }

    #[test]
    fn uppercase_hex_checksum_is_rejected_as_noncanonical() {
        let payload = sample(1).render();
        let line = format!("{payload} #{:016X}", fnv1a(payload.as_bytes()));
        if line.contains(|c: char| c.is_ascii_uppercase() && c.is_ascii_hexdigit()) {
            assert_eq!(Sample::parse_line(&line), None);
        }
        assert!(Sample::parse_line(checksummed(&payload).trim_end()).is_some());
    }
}
