//! Declarative service-level objectives over the request time-series.
//!
//! A spec like `p99_ms=500,unknown_rate=0.05` is parsed once
//! ([`SloSpec::parse`]) and evaluated over a sliding window of
//! [`tsdb::Sample`]s ([`SloSpec::evaluate`]): latency objectives run the
//! window's wall times through the shared [`Histogram`] (same coarse
//! quantile bounds as every other surface), rate objectives are ratios
//! over the window. Each objective whose observed value exceeds its
//! threshold yields a [`Violation`]; the daemon turns those into leveled
//! `warn` events plus the `slo.alerts` counter and `slo.active_alerts`
//! gauge, and `report slo` replays them offline from `tsdb.bf4t`.

use crate::hist::Histogram;
use crate::tsdb::Sample;
use std::fmt;
use std::time::Duration;

/// One objective kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloKind {
    /// p50 request latency upper bound, milliseconds.
    P50Ms,
    /// p90 request latency upper bound, milliseconds.
    P90Ms,
    /// p99 request latency upper bound, milliseconds.
    P99Ms,
    /// Undecided bugs / total bugs over the window (0..=1).
    UnknownRate,
    /// Degraded requests / requests over the window (0..=1).
    DegradedRate,
}

impl SloKind {
    /// The spec key (`p99_ms`, `unknown_rate`, ...).
    pub fn key(self) -> &'static str {
        match self {
            SloKind::P50Ms => "p50_ms",
            SloKind::P90Ms => "p90_ms",
            SloKind::P99Ms => "p99_ms",
            SloKind::UnknownRate => "unknown_rate",
            SloKind::DegradedRate => "degraded_rate",
        }
    }
}

const ALL_KINDS: [SloKind; 5] = [
    SloKind::P50Ms,
    SloKind::P90Ms,
    SloKind::P99Ms,
    SloKind::UnknownRate,
    SloKind::DegradedRate,
];

/// A parsed `--slo` spec: objective thresholds in spec order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloSpec {
    /// `(objective, threshold)` pairs.
    pub rules: Vec<(SloKind, f64)>,
}

impl SloSpec {
    /// Parse `key=value[,key=value...]`. Unknown keys, unparsable or
    /// negative values, and duplicate keys are errors — a mistyped
    /// objective must fail startup, not silently never fire.
    pub fn parse(spec: &str) -> Result<SloSpec, String> {
        let mut rules = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("SLO rule `{part}` is not key=value"))?;
            let kind = ALL_KINDS
                .into_iter()
                .find(|k| k.key() == key.trim())
                .ok_or_else(|| {
                    format!(
                        "unknown SLO key `{}` (expected one of: {})",
                        key.trim(),
                        ALL_KINDS.map(SloKind::key).join(", ")
                    )
                })?;
            let threshold: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("SLO threshold `{value}` is not a number"))?;
            if !threshold.is_finite() || threshold < 0.0 {
                return Err(format!("SLO threshold `{value}` must be finite and >= 0"));
            }
            if rules.iter().any(|(k, _)| *k == kind) {
                return Err(format!("duplicate SLO key `{}`", kind.key()));
            }
            rules.push((kind, threshold));
        }
        if rules.is_empty() {
            return Err("empty SLO spec".to_string());
        }
        Ok(SloSpec { rules })
    }

    /// Evaluate every objective over one window of samples. An empty
    /// window never violates (no data is not bad data).
    pub fn evaluate(&self, window: &[Sample]) -> Vec<Violation> {
        if window.is_empty() {
            return Vec::new();
        }
        let mut lat = Histogram::default();
        let (mut bugs, mut undecided, mut degraded) = (0u64, 0u64, 0u64);
        for s in window {
            lat.record(Duration::from_micros(s.wall_micros));
            bugs += s.bugs;
            undecided += s.undecided;
            degraded += u64::from(s.degraded);
        }
        let mut out = Vec::new();
        for (kind, threshold) in &self.rules {
            let actual = match kind {
                SloKind::P50Ms => lat.quantile_bound_micros(0.5) as f64 / 1000.0,
                SloKind::P90Ms => lat.quantile_bound_micros(0.9) as f64 / 1000.0,
                SloKind::P99Ms => lat.quantile_bound_micros(0.99) as f64 / 1000.0,
                SloKind::UnknownRate => {
                    if bugs == 0 {
                        0.0
                    } else {
                        undecided as f64 / bugs as f64
                    }
                }
                SloKind::DegradedRate => degraded as f64 / window.len() as f64,
            };
            if actual > *threshold {
                out.push(Violation {
                    kind: *kind,
                    actual,
                    threshold: *threshold,
                    window: window.len(),
                });
            }
        }
        out
    }
}

/// One objective exceeded over one window.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which objective.
    pub kind: SloKind,
    /// The observed value (same unit as the threshold).
    pub actual: f64,
    /// The configured threshold.
    pub threshold: f64,
    /// Number of samples in the window evaluated.
    pub window: usize,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {:.3} exceeds {:.3} over last {} request(s)",
            self.kind.key(),
            self.actual,
            self.threshold,
            self.window
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(wall_ms: u64, bugs: u64, undecided: u64, degraded: bool) -> Sample {
        Sample {
            ts_ms: 0,
            req: "req-1".to_string(),
            program: "p".to_string(),
            wall_micros: wall_ms * 1000,
            bugs,
            after_fixes: 0,
            undecided,
            skips: 0,
            reverified: bugs,
            cache_hits: 0,
            warm_hits: 0,
            degraded,
        }
    }

    #[test]
    fn parse_accepts_the_documented_grammar_and_rejects_the_rest() {
        let spec = SloSpec::parse("p99_ms=500, unknown_rate=0.05").unwrap();
        assert_eq!(
            spec.rules,
            vec![(SloKind::P99Ms, 500.0), (SloKind::UnknownRate, 0.05)]
        );
        for bad in [
            "",
            "p99_ms",
            "p42_ms=1",
            "p99_ms=fast",
            "p99_ms=-1",
            "p99_ms=1,p99_ms=2",
        ] {
            assert!(SloSpec::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn latency_objective_fires_only_when_the_bound_exceeds_the_threshold() {
        let spec = SloSpec::parse("p99_ms=500").unwrap();
        // 100ms lands in the 65..131ms bucket: bound 131.072ms < 500ms.
        let quiet: Vec<Sample> = (0..10).map(|_| sample(100, 1, 0, false)).collect();
        assert!(spec.evaluate(&quiet).is_empty());
        // One 900ms tail in ten samples pushes p99 past 500ms.
        let mut noisy = quiet.clone();
        noisy.push(sample(900, 1, 0, false));
        let v = spec.evaluate(&noisy);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, SloKind::P99Ms);
        assert!(v[0].actual > 500.0);
    }

    #[test]
    fn rate_objectives_are_ratios_over_the_window() {
        let spec = SloSpec::parse("unknown_rate=0.2,degraded_rate=0.0").unwrap();
        let window = vec![
            sample(1, 4, 0, false),
            sample(1, 4, 2, false),
            sample(1, 2, 1, true),
        ];
        let v = spec.evaluate(&window);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].kind, SloKind::UnknownRate);
        assert!((v[0].actual - 0.3).abs() < 1e-9);
        assert_eq!(v[1].kind, SloKind::DegradedRate);
        assert!((v[1].actual - 1.0 / 3.0).abs() < 1e-9);
        assert!(v[1].to_string().contains("degraded_rate"));
    }

    #[test]
    fn empty_window_and_zero_bugs_never_divide_or_fire() {
        let spec = SloSpec::parse("unknown_rate=0.0,degraded_rate=0.5").unwrap();
        assert!(spec.evaluate(&[]).is_empty());
        assert!(spec.evaluate(&[sample(1, 0, 0, false)]).is_empty());
    }
}
