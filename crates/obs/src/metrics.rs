//! Typed counters, gauges and latency histograms.
//!
//! Metric sites are keyed by `&'static str` names (dots as namespace
//! separators, e.g. `smt.queries`). Like spans, they are off by default:
//! a disabled site costs one relaxed atomic load. When enabled, updates
//! take a global mutex — metric sites sit on coarse paths (per query,
//! per job, per insertion), not inner loops, so contention is negligible
//! next to the work being measured.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

static ENABLED: AtomicBool = AtomicBool::new(false);

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    hists: BTreeMap<&'static str, Histogram>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Turn metric collection on or off (off by default).
pub fn set_metrics(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric collection is currently on.
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear every counter, gauge and histogram.
pub fn reset_metrics() {
    let mut r = registry();
    r.counters.clear();
    r.gauges.clear();
    r.hists.clear();
}

/// Add to a named counter (no-op while metrics are off).
pub fn counter_add(name: &'static str, delta: u64) {
    if !metrics_enabled() {
        return;
    }
    *registry().counters.entry(name).or_insert(0) += delta;
}

/// Set a named gauge to its latest value (no-op while metrics are off).
pub fn gauge_set(name: &'static str, value: i64) {
    if !metrics_enabled() {
        return;
    }
    registry().gauges.insert(name, value);
}

/// Record a latency sample into a named histogram (no-op while metrics
/// are off).
pub fn hist_record(name: &'static str, sample: Duration) {
    if !metrics_enabled() {
        return;
    }
    registry().hists.entry(name).or_default().record(sample);
}

/// Point-in-time summary of one latency histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Mean sample in microseconds.
    pub mean_micros: u64,
    /// Coarse p50 upper bound in microseconds.
    pub p50_micros: u64,
    /// Coarse p90 upper bound in microseconds.
    pub p90_micros: u64,
    /// Coarse p99 upper bound in microseconds.
    pub p99_micros: u64,
    /// Largest sample in microseconds.
    pub max_micros: u64,
    /// Sum of all samples in microseconds (the exposition `_sum` series).
    pub sum_micros: u64,
}

impl HistSummary {
    /// Summarize one histogram (the only place summaries are built, so
    /// every surface reports the same quantile bounds).
    pub fn of(h: &Histogram) -> HistSummary {
        HistSummary {
            count: h.count(),
            mean_micros: h.mean().as_micros() as u64,
            p50_micros: h.quantile_bound_micros(0.5),
            p90_micros: h.quantile_bound_micros(0.9),
            p99_micros: h.quantile_bound_micros(0.99),
            max_micros: h.max().as_micros() as u64,
            sum_micros: h.total().as_micros() as u64,
        }
    }
}

/// A point-in-time copy of every metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<&'static str, HistSummary>,
}

impl MetricsSnapshot {
    /// Counters accumulated since `earlier` (gauges and histograms keep
    /// their current values — only counters difference meaningfully).
    /// Used to attribute the global registry to one program's report.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, v) in out.counters.iter_mut() {
            *v -= earlier.counters.get(name).copied().unwrap_or(0);
        }
        out.counters.retain(|_, v| *v != 0);
        out
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter {name} = {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "gauge {name} = {v}")?;
        }
        for (name, h) in &self.hists {
            writeln!(
                f,
                "hist {name}: n={} mean={}us p50<{}us p90<{}us p99<{}us max={}us",
                h.count, h.mean_micros, h.p50_micros, h.p90_micros, h.p99_micros, h.max_micros
            )?;
        }
        Ok(())
    }
}

/// Copy out the current state of every metric.
pub fn snapshot() -> MetricsSnapshot {
    let r = registry();
    MetricsSnapshot {
        counters: r.counters.clone(),
        gauges: r.gauges.clone(),
        hists: r.hists.iter().map(|(k, h)| (*k, HistSummary::of(h))).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Metric tests share the process-global registry; serialize them.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _g = lock();
        set_metrics(false);
        reset_metrics();
        counter_add("t.off", 1);
        gauge_set("t.off_g", 7);
        hist_record("t.off_h", Duration::from_micros(5));
        assert!(snapshot().is_empty());
    }

    #[test]
    fn counters_gauges_hists_round_trip() {
        let _g = lock();
        set_metrics(true);
        reset_metrics();
        counter_add("t.c", 2);
        counter_add("t.c", 3);
        gauge_set("t.g", -1);
        gauge_set("t.g", 9);
        hist_record("t.h", Duration::from_micros(100));
        set_metrics(false);
        let s = snapshot();
        assert_eq!(s.counters.get("t.c"), Some(&5));
        assert_eq!(s.gauges.get("t.g"), Some(&9));
        let h = s.hists.get("t.h").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.p50_micros, 128);
        reset_metrics();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn delta_keeps_only_new_counter_activity() {
        let _g = lock();
        set_metrics(true);
        reset_metrics();
        counter_add("t.d", 4);
        let before = snapshot();
        counter_add("t.d", 6);
        counter_add("t.e", 1);
        set_metrics(false);
        let delta = snapshot().delta_since(&before);
        assert_eq!(delta.counters.get("t.d"), Some(&6));
        assert_eq!(delta.counters.get("t.e"), Some(&1));
        reset_metrics();
    }

    #[test]
    fn snapshot_display_is_deterministic() {
        let _g = lock();
        set_metrics(true);
        reset_metrics();
        counter_add("t.z", 1);
        counter_add("t.a", 2);
        gauge_set("t.m", 3);
        set_metrics(false);
        let text = snapshot().to_string();
        assert_eq!(text, "counter t.a = 2\ncounter t.z = 1\ngauge t.m = 3\n");
        reset_metrics();
    }
}
