//! The machine-readable trace format: one JSON object per line.
//!
//! Schema (all eight keys required, no others allowed):
//!
//! ```json
//! {"ts":1042,"dur":311,"id":7,"parent":3,"layer":"smt","name":"query",
//!  "thread":2,"tags":{"cache":"miss","verdict":"unsat"}}
//! ```
//!
//! * `ts` — span start, whole microseconds since the trace epoch;
//! * `dur` — span duration in microseconds;
//! * `id` — process-unique span id (nonzero); `parent` — enclosing span's
//!   id, or `null` for a root;
//! * `layer`/`name` — where and what; `thread` — recording thread id;
//! * `tags` — string-to-string annotations, possibly empty.
//!
//! [`validate_line`] is the single source of truth for the schema: the
//! `trace-lint` tool, the `profile` aggregator and the tests all go
//! through it.

use crate::json::{self, Value};
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed trace line, owned (unlike [`SpanRecord`], whose layer and
/// tag keys are `&'static str`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Start in microseconds since the trace epoch.
    pub ts: u64,
    /// Duration in microseconds.
    pub dur: u64,
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span's id, if any.
    pub parent: Option<u64>,
    /// Pipeline layer.
    pub layer: String,
    /// Stage or operation name.
    pub name: String,
    /// Recording thread id.
    pub thread: u64,
    /// Annotations, sorted by key.
    pub tags: BTreeMap<String, String>,
}

/// Render span records as JSONL, one line per span, in registry order.
pub fn render_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let _ = write!(
            out,
            "{{\"ts\":{},\"dur\":{},\"id\":{},\"parent\":",
            s.ts_micros, s.dur_micros, s.id
        );
        match s.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"layer\":{},\"name\":{},\"thread\":{},\"tags\":{{",
            json::escape(s.layer),
            json::escape(&s.name),
            s.thread
        );
        // Sort tags so the line is independent of tag insertion order.
        let mut tags: Vec<_> = s.tags.iter().collect();
        tags.sort();
        for (i, (k, v)) in tags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json::escape(k), json::escape(v));
        }
        out.push_str("}}\n");
    }
    out
}

const REQUIRED_KEYS: [&str; 8] = ["ts", "dur", "id", "parent", "layer", "name", "thread", "tags"];

/// Check one line against the schema and return it parsed. `Err` carries
/// a human-readable reason (used verbatim by `trace-lint`).
pub fn validate_line(line: &str) -> Result<TraceSpan, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let obj = v.as_obj().ok_or("line is not a JSON object")?;
    for key in REQUIRED_KEYS {
        if !obj.contains_key(key) {
            return Err(format!("missing key \"{key}\""));
        }
    }
    for key in obj.keys() {
        if !REQUIRED_KEYS.contains(&key.as_str()) {
            return Err(format!("unknown key \"{key}\""));
        }
    }
    let num = |key: &str| -> Result<u64, String> {
        obj[key]
            .as_u64()
            .ok_or_else(|| format!("\"{key}\" must be a non-negative integer"))
    };
    let string = |key: &str| -> Result<String, String> {
        obj[key]
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("\"{key}\" must be a string"))
    };
    let id = num("id")?;
    if id == 0 {
        return Err("\"id\" must be nonzero".to_string());
    }
    let parent = match &obj["parent"] {
        Value::Null => None,
        v => Some(
            v.as_u64()
                .ok_or("\"parent\" must be null or a non-negative integer")?,
        ),
    };
    if parent == Some(id) {
        return Err("span cannot be its own parent".to_string());
    }
    let layer = string("layer")?;
    if layer.is_empty() {
        return Err("\"layer\" must be non-empty".to_string());
    }
    let name = string("name")?;
    if name.is_empty() {
        return Err("\"name\" must be non-empty".to_string());
    }
    let mut tags = BTreeMap::new();
    for (k, v) in obj["tags"].as_obj().ok_or("\"tags\" must be an object")? {
        let v = v
            .as_str()
            .ok_or_else(|| format!("tag \"{k}\" must be a string"))?;
        tags.insert(k.clone(), v.to_string());
    }
    Ok(TraceSpan {
        ts: num("ts")?,
        dur: num("dur")?,
        id,
        parent,
        layer,
        name,
        thread: num("thread")?,
        tags,
    })
}

/// [`validate_line`], tolerating a trailing newline and skipping blank
/// lines (returns `Ok(None)` for those).
pub fn parse_line(line: &str) -> Result<Option<TraceSpan>, String> {
    let line = line.trim_end_matches(['\n', '\r']);
    if line.trim().is_empty() {
        return Ok(None);
    }
    validate_line(line).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> SpanRecord {
        SpanRecord {
            id: 7,
            parent: Some(3),
            layer: "smt",
            name: "query".to_string(),
            thread: 2,
            ts_micros: 1042,
            dur_micros: 311,
            tags: vec![("verdict", "unsat".to_string()), ("cache", "miss".to_string())],
        }
    }

    #[test]
    fn render_then_validate_round_trips() {
        let line = render_jsonl(&[record()]);
        let span = validate_line(line.trim_end()).unwrap();
        assert_eq!(span.id, 7);
        assert_eq!(span.parent, Some(3));
        assert_eq!(span.layer, "smt");
        assert_eq!(span.ts, 1042);
        assert_eq!(span.dur, 311);
        assert_eq!(span.tags["cache"], "miss");
        assert_eq!(span.tags["verdict"], "unsat");
    }

    #[test]
    fn roots_render_null_parents() {
        let mut r = record();
        r.parent = None;
        let line = render_jsonl(&[r]);
        assert!(line.contains("\"parent\":null"));
        assert_eq!(validate_line(line.trim_end()).unwrap().parent, None);
    }

    #[test]
    fn tag_order_is_normalized_and_escaped() {
        let mut r = record();
        r.tags = vec![("z", "with \"quote\"".to_string()), ("a", "1".to_string())];
        let line = render_jsonl(&[r]);
        assert!(line.find("\"a\":\"1\"").unwrap() < line.find("\"z\":").unwrap());
        assert_eq!(
            validate_line(line.trim_end()).unwrap().tags["z"],
            "with \"quote\""
        );
    }

    #[test]
    fn rejects_schema_violations() {
        let good = render_jsonl(&[record()]);
        let good = good.trim_end();
        for (bad, why) in [
            ("not json", "parse failure"),
            ("[1]", "non-object"),
            (&good.replace("\"ts\":1042", "\"ts\":-1"), "negative ts"),
            (&good.replace("\"id\":7", "\"id\":0"), "zero id"),
            (&good.replace("\"parent\":3", "\"parent\":7"), "self parent"),
            (&good.replace("\"layer\":\"smt\"", "\"layer\":\"\""), "empty layer"),
            (&good.replace("\"thread\":2", "\"thread\":\"x\""), "string thread"),
            (&good.replace("\"cache\":\"miss\"", "\"cache\":1"), "non-string tag"),
            (&good.replace("\"dur\":311", "\"dur\":311,\"extra\":1"), "unknown key"),
            (&good.replace("\"dur\":311,", ""), "missing dur"),
        ] {
            assert!(validate_line(bad).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn parse_line_skips_blanks() {
        assert_eq!(parse_line("\n").unwrap(), None);
        assert_eq!(parse_line("  ").unwrap(), None);
        assert!(parse_line(&render_jsonl(&[record()])).unwrap().is_some());
    }
}
