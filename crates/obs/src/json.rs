//! A minimal JSON reader, just enough to validate and aggregate trace
//! lines (the workspace is dependency-free, so no serde).
//!
//! Supports the full value grammar — null, booleans, numbers, strings
//! with escapes, arrays, objects — with strict parsing: trailing input,
//! unknown escapes and bad numbers are errors.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; stored as f64 (trace fields stay well below 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is normalized.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Why a document failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

/// Parse one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Escape a string into a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates would need pairing; trace strings
                            // never contain them, so reject rather than
                            // emit garbage.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key, val).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Value::Str("a\n\"bA".to_string())
        );
        let v = parse("{\"k\": [1, {\"x\": null}], \"e\": []}").unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj.len(), 2);
        assert_eq!(obj["e"], Value::Arr(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":1,}", "1 2", "\"unterminated", "nul",
                    "{\"a\":1,\"a\":2}", "\"\\q\""] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let original = "tab\there \"quoted\" back\\slash\nnewline\u{1}ctl";
        let v = parse(&escape(original)).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
