#![warn(missing_docs)]

//! # bf4-obs — unified tracing & metrics for the bf4 pipeline
//!
//! Every layer of the reproduction (frontend, IR, SMT, engine, shim)
//! reports what it does through this crate, so that a single run can be
//! profiled end to end instead of each crate keeping its own incompatible
//! counters:
//!
//! * [`span`]/[`Span`] — RAII span-scoped timers with parent/child nesting
//!   per thread. Closed spans flow through a cheap per-thread buffer into
//!   a global registry ([`take_spans`] drains it);
//! * [`counter_add`]/[`gauge_set`]/[`hist_record`] — typed counters,
//!   gauges and latency histograms, snapshotted by [`snapshot`];
//! * [`Histogram`] — the shared log2-bucketed latency histogram (promoted
//!   from `bf4-engine`), used both here and by the engine/shim roll-ups;
//! * [`event`] and friends — leveled diagnostics on stderr, filtered by
//!   the `BF4_LOG` environment variable (silent by default, so default
//!   stderr output is byte-stable);
//! * [`trace`] — the machine-readable JSONL schema: render, parse,
//!   validate;
//! * [`profile`] — human renderings: a flame-style breakdown of a span
//!   forest and a per-program/per-stage time table for BENCH files;
//! * [`fault`] — deterministic seeded fault injection: named fault sites
//!   throughout the pipeline fire per a replayable schedule
//!   (`BF4_FAULTS`), and every injected fault is itself traced;
//! * [`expose`] — Prometheus text-exposition rendering (and the matching
//!   parser/lint) of a metrics snapshot, served by `bf4d`;
//! * [`tsdb`] — the persistent per-request time-series (`tsdb.bf4t`):
//!   checksummed append-only records with per-line salvage and
//!   size-capped ring compaction;
//! * [`slo`] — declarative service-level objectives evaluated over a
//!   sliding window of that series;
//! * [`ctx_tag`] — ambient per-thread context tags (request IDs) that
//!   attach to every span opened under the guard.
//!
//! ## Overhead contract
//!
//! Tracing and metrics are **disabled by default**. A span site while
//! disabled costs one relaxed atomic load and returns an inert guard —
//! no clock read, no allocation. When enabled, a span costs two
//! [`std::time::Instant`] reads plus one buffered record; the pipeline
//! only opens spans around work in the microsecond-and-up range
//! (solver queries, CFG passes, scheduler jobs), keeping whole-corpus
//! overhead under the 5% budget documented in DESIGN.md §9.

pub mod event;
pub mod expose;
pub mod fault;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod slo;
pub mod span;
pub mod trace;
pub mod tsdb;

pub use event::{debug, error, event, info, log_enabled, set_log_filter, warn, Level};
pub use fault::{FaultPlan, SiteStats, Trigger};
pub use hist::Histogram;
pub use metrics::{
    counter_add, gauge_set, hist_record, metrics_enabled, reset_metrics, set_metrics, snapshot,
    HistSummary, MetricsSnapshot,
};
pub use profile::{render_flame, stage_table};
pub use slo::{SloKind, SloSpec, Violation};
pub use span::{
    ctx_tag, current_thread_id, enabled, reset_spans, set_enabled, span, take_spans, CtxGuard,
    Span, SpanRecord,
};
pub use trace::{parse_line, render_jsonl, validate_line, TraceSpan};
