//! Human renderings of a span forest: a flame-style breakdown for
//! `--profile` and a per-program/per-stage time table for
//! `report profile`.

use crate::span::SpanRecord;
use crate::trace::TraceSpan;
use std::collections::BTreeMap;
use std::fmt::Write as _;

impl From<&SpanRecord> for TraceSpan {
    fn from(s: &SpanRecord) -> TraceSpan {
        TraceSpan {
            ts: s.ts_micros,
            dur: s.dur_micros,
            id: s.id,
            parent: s.parent,
            layer: s.layer.to_string(),
            name: s.name.clone(),
            thread: s.thread,
            tags: s
                .tags
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

fn fmt_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}us")
    }
}

/// Render a flame-style breakdown: each root span and its descendants,
/// indented by depth, ordered by start time, with durations and tags.
/// Spans whose parent is missing from the slice are treated as roots.
pub fn render_flame(spans: &[TraceSpan]) -> String {
    let mut children: BTreeMap<u64, Vec<&TraceSpan>> = BTreeMap::new();
    let mut roots: Vec<&TraceSpan> = Vec::new();
    let known: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    for s in spans {
        match s.parent {
            Some(p) if known.contains(&p) => children.entry(p).or_default().push(s),
            _ => roots.push(s),
        }
    }
    let by_start = |a: &&TraceSpan, b: &&TraceSpan| a.ts.cmp(&b.ts).then(a.id.cmp(&b.id));
    roots.sort_by(by_start);
    for v in children.values_mut() {
        v.sort_by(by_start);
    }

    let total: u64 = roots.iter().map(|s| s.dur).sum();
    let mut out = format!(
        "profile: {} spans, {} roots, {} total\n",
        spans.len(),
        roots.len(),
        fmt_micros(total)
    );
    let mut stack: Vec<(&TraceSpan, usize)> = roots.iter().rev().map(|s| (*s, 0)).collect();
    while let Some((s, depth)) = stack.pop() {
        let _ = write!(
            out,
            "{:indent$}{}/{} {}",
            "",
            s.layer,
            s.name,
            fmt_micros(s.dur),
            indent = 2 * depth
        );
        for (k, v) in &s.tags {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        if let Some(kids) = children.get(&s.id) {
            stack.extend(kids.iter().rev().map(|k| (*k, depth + 1)));
        }
    }
    out
}

/// Aggregate a span forest into a per-program, per-stage time table.
///
/// A span's program is the value of its nearest ancestor-or-self
/// `program` tag; spans with none are grouped under `-`. Stages are
/// `layer/name` pairs. The table reports count, total and mean duration
/// per cell, then per-stage totals across programs.
pub fn stage_table(spans: &[TraceSpan]) -> String {
    let by_id: BTreeMap<u64, &TraceSpan> = spans.iter().map(|s| (s.id, s)).collect();
    fn program_of<'a>(by_id: &BTreeMap<u64, &'a TraceSpan>, mut s: &'a TraceSpan) -> String {
        loop {
            if let Some(p) = s.tags.get("program") {
                return p.clone();
            }
            match s.parent.and_then(|p| by_id.get(&p)) {
                Some(parent) => s = parent,
                None => return "-".to_string(),
            }
        }
    }

    // (program, stage) -> (count, total_micros)
    let mut cells: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    let mut stages: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for s in spans {
        let stage = format!("{}/{}", s.layer, s.name);
        let cell = cells
            .entry((program_of(&by_id, s), stage.clone()))
            .or_insert((0, 0));
        cell.0 += 1;
        cell.1 += s.dur;
        let agg = stages.entry(stage).or_insert((0, 0));
        agg.0 += 1;
        agg.1 += s.dur;
    }

    let width = cells
        .keys()
        .map(|(p, s)| p.len().max(s.len()))
        .chain(["program".len()])
        .max()
        .unwrap_or(8);
    let mut out = format!(
        "{:<width$}  {:<width$}  {:>8}  {:>12}  {:>12}\n",
        "program", "stage", "count", "total", "mean"
    );
    for ((program, stage), (count, total)) in &cells {
        let _ = writeln!(
            out,
            "{program:<width$}  {stage:<width$}  {count:>8}  {:>12}  {:>12}",
            fmt_micros(*total),
            fmt_micros(total / count.max(&1))
        );
    }
    let _ = writeln!(out, "-- per-stage totals --");
    for (stage, (count, total)) in &stages {
        let _ = writeln!(
            out,
            "{:<width$}  {stage:<width$}  {count:>8}  {:>12}  {:>12}",
            "*",
            fmt_micros(*total),
            fmt_micros(total / count.max(&1))
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, layer: &str, name: &str, ts: u64, dur: u64) -> TraceSpan {
        TraceSpan {
            ts,
            dur,
            id,
            parent,
            layer: layer.to_string(),
            name: name.to_string(),
            thread: 1,
            tags: BTreeMap::new(),
        }
    }

    #[test]
    fn flame_indents_children_under_parents() {
        let mut root = span(1, None, "engine", "job", 0, 100);
        root.tags.insert("program".to_string(), "a.p4".to_string());
        let child = span(2, Some(1), "smt", "query", 10, 20);
        let text = render_flame(&[child.clone(), root.clone()]);
        assert!(text.contains("1 roots"));
        assert!(text.contains("engine/job 100us program=a.p4"));
        assert!(text.contains("\n  smt/query 20us"));
    }

    #[test]
    fn flame_treats_orphans_as_roots() {
        let orphan = span(5, Some(999), "ir", "lower", 0, 7);
        let text = render_flame(&[orphan]);
        assert!(text.contains("1 roots"));
        assert!(text.contains("ir/lower 7us"));
    }

    #[test]
    fn stage_table_attributes_children_to_ancestor_program() {
        let mut root = span(1, None, "engine", "job", 0, 100);
        root.tags.insert("program".to_string(), "a.p4".to_string());
        let child = span(2, Some(1), "smt", "query", 10, 20);
        let loose = span(3, None, "frontend", "parse", 0, 5);
        let text = stage_table(&[root, child, loose]);
        assert!(text.contains("a.p4"), "{text}");
        // The child inherits the program tag from its ancestor.
        let query_line = text.lines().find(|l| l.contains("smt/query")).unwrap();
        assert!(query_line.starts_with("a.p4"), "{query_line}");
        // Untagged roots fall into the '-' bucket.
        let parse_line = text.lines().find(|l| l.contains("frontend/parse")).unwrap();
        assert!(parse_line.starts_with('-'), "{parse_line}");
        assert!(text.contains("-- per-stage totals --"));
    }

    #[test]
    fn record_conversion_preserves_fields() {
        let r = SpanRecord {
            id: 4,
            parent: None,
            layer: "shim",
            name: "insert".to_string(),
            thread: 3,
            ts_micros: 11,
            dur_micros: 5,
            tags: vec![("table", "acl".to_string())],
        };
        let t = TraceSpan::from(&r);
        assert_eq!(t.id, 4);
        assert_eq!(t.layer, "shim");
        assert_eq!(t.tags["table"], "acl");
    }
}
