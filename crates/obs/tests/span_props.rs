//! Span nesting always yields a well-formed forest: random open/close
//! programs (executed with real RAII guards on the calling thread) must
//! produce records where every close matches an open, parents exist and
//! precede their children on the same thread, and every child's time
//! interval nests inside its parent's. The `profile` aggregator and the
//! JSONL export both assume this shape.

use bf4_obs::{
    current_thread_id, render_jsonl, reset_spans, set_enabled, span, take_spans, validate_line,
    Span, SpanRecord,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Tiny deterministic RNG so each proptest case is reproducible from its
/// seed argument alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The span registry is process-global; serialize every test that
/// enables collection so concurrent test threads don't mix records.
fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

const LAYERS: [&str; 5] = ["frontend", "ir", "smt", "engine", "shim"];

/// Run a random well-bracketed open/close program with real guards and
/// return (records of this thread, number of spans opened).
fn run_random_program(seed: u64) -> (Vec<SpanRecord>, usize) {
    let mut rng = Rng(seed | 1);
    set_enabled(true);
    reset_spans();
    let mut stack: Vec<Span> = Vec::new();
    let mut opened = 0usize;
    for step in 0..(8 + rng.below(40)) {
        let open = stack.is_empty() || (stack.len() < 6 && rng.below(2) == 0);
        if open {
            let mut s = span(LAYERS[rng.below(5) as usize], format!("op{step}"));
            if rng.below(3) == 0 {
                s.add_tag("program", format!("p{}.p4", rng.below(3)));
            }
            stack.push(s);
            opened += 1;
        } else {
            drop(stack.pop());
        }
    }
    // Close remaining guards innermost-first, as scope exit would (a
    // plain `drop(stack)` would drop the Vec front-to-back, i.e.
    // parents before children — not a shape RAII scoping can produce).
    while let Some(s) = stack.pop() {
        drop(s);
    }
    set_enabled(false);
    let me = current_thread_id();
    let mut records = take_spans();
    records.retain(|r| r.thread == me);
    (records, opened)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn span_records_form_a_well_formed_forest(seed: u64) {
        let _g = lock();
        let (records, opened) = run_random_program(seed);

        // Every open produced exactly one close.
        prop_assert_eq!(records.len(), opened);

        let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
        prop_assert_eq!(by_id.len(), records.len(), "span ids must be unique");

        for r in &records {
            prop_assert!(r.id != 0);
            if let Some(pid) = r.parent {
                let parent = by_id.get(&pid);
                prop_assert!(parent.is_some(), "parent {} of {} missing", pid, r.id);
                let parent = parent.unwrap();
                // Children open after their parent and close no later:
                // the child's interval nests inside the parent's, so
                // child duration cannot exceed the parent's.
                prop_assert!(r.ts_micros >= parent.ts_micros);
                prop_assert!(
                    r.ts_micros + r.dur_micros <= parent.ts_micros + parent.dur_micros,
                    "child {} [{}, +{}] escapes parent {} [{}, +{}]",
                    r.id, r.ts_micros, r.dur_micros,
                    parent.id, parent.ts_micros, parent.dur_micros
                );
                prop_assert!(r.dur_micros <= parent.dur_micros);
            }
        }

        // No cycles: walking parents always terminates at a root.
        for r in &records {
            let mut hops = 0;
            let mut cur = r.parent;
            while let Some(pid) = cur {
                hops += 1;
                prop_assert!(hops <= records.len(), "parent chain of {} cycles", r.id);
                cur = by_id[&pid].parent;
            }
        }
    }

    #[test]
    fn every_record_renders_to_a_schema_valid_line(seed: u64) {
        let _g = lock();
        let (records, _) = run_random_program(seed);
        let jsonl = render_jsonl(&records);
        let mut lines = 0;
        for line in jsonl.lines() {
            let parsed = validate_line(line);
            prop_assert!(parsed.is_ok(), "invalid line {:?}: {:?}", line, parsed.err());
            lines += 1;
        }
        prop_assert_eq!(lines, records.len());
    }
}
