//! Merging histograms recorded on different threads must preserve the
//! quantile story: for every q, the merged coarse quantile bound lies
//! between the smallest and largest per-thread bound (the merged
//! distribution can be no tighter than its tightest shard and no looser
//! than its loosest), and the exact moments (count/sum/max) are the sums
//! and max of the shards. This is what makes one pool-wide
//! `daemon.request_micros` summary trustworthy when workers record into
//! thread-local histograms that are merged at a join barrier.

use bf4_obs::Histogram;
use proptest::prelude::*;
use std::time::Duration;

/// Tiny deterministic RNG so each case reproduces from its seed alone
/// (the vendored proptest has no collection strategies).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// `n_shards` sample vectors (1..=39 samples each, spread over six
/// decades of microseconds so buckets both collide and separate).
fn gen_shards(seed: u64, n_shards: usize) -> Vec<Vec<u64>> {
    let mut rng = Rng(seed | 1);
    (0..n_shards)
        .map(|_| {
            let n = (rng.next() % 39 + 1) as usize;
            (0..n)
                .map(|_| {
                    let decade = rng.next() % 7;
                    rng.next() % 10u64.pow(decade as u32).max(2)
                })
                .collect()
        })
        .collect()
}

fn build(samples: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &m in samples {
        h.record(Duration::from_micros(m));
    }
    h
}

proptest! {
    #[test]
    fn merged_quantiles_bracket_per_thread_quantiles(
        seed in 1u64..u64::MAX,
        n_shards in 1usize..6,
    ) {
        let shards = gen_shards(seed, n_shards);
        // Record each shard on its own OS thread (the real engine shape:
        // per-worker histograms merged after join).
        let built: Vec<Histogram> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|s| scope.spawn(move || build(s)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut merged = Histogram::default();
        for h in &built {
            merged.merge(h);
        }

        let total: u64 = shards.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(merged.count(), total);
        let sum: u128 = shards.iter().flatten().map(|&m| m as u128).sum();
        prop_assert_eq!(merged.total().as_micros(), sum);
        let max = shards.iter().flatten().copied().max().unwrap_or(0);
        prop_assert_eq!(merged.max(), Duration::from_micros(max));

        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let bounds: Vec<u64> = built
                .iter()
                .map(|h| h.quantile_bound_micros(q))
                .collect();
            let lo = bounds.iter().copied().min().unwrap();
            let hi = bounds.iter().copied().max().unwrap();
            let m = merged.quantile_bound_micros(q);
            prop_assert!(
                lo <= m && m <= hi,
                "q={}: merged bound {} outside per-thread bracket [{}, {}]",
                q, m, lo, hi
            );
        }
    }

    #[test]
    fn merge_is_commutative_and_agrees_with_recording_everything_once(
        seed in 1u64..u64::MAX,
    ) {
        let shards = gen_shards(seed, 2);
        let (a, b) = (&shards[0], &shards[1]);
        let (ha, hb) = (build(a), build(b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        let mut all = a.clone();
        all.extend_from_slice(b);
        let direct = build(&all);
        for h in [&ba, &direct] {
            prop_assert_eq!(ab.count(), h.count());
            prop_assert_eq!(ab.total(), h.total());
            prop_assert_eq!(ab.max(), h.max());
            for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(
                    ab.quantile_bound_micros(q),
                    h.quantile_bound_micros(q)
                );
            }
        }
    }
}
