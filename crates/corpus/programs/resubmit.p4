// Minimal resubmit example; all bugs controllable with existing keys
// (Table 1: resubmit — 0 after Infer, 0 keys).
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header probe_t { bit<8> hops; bit<8> max_hops; }
struct meta_t { bit<8> resubmit_count; }
struct headers { ethernet_t ethernet; probe_t probe; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x7777: parse_probe;
            default: accept;
        }
    }
    state parse_probe { packet.extract(hdr.probe); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    action drop_() { mark_to_drop(standard_metadata); }
    action do_resubmit() {
        meta.resubmit_count = meta.resubmit_count + 1;
        hdr.probe.hops = hdr.probe.hops + 1;
        resubmit_preserving_field_list(0);
        standard_metadata.egress_spec = 0;
    }
    action forward(bit<9> port) { standard_metadata.egress_spec = port; }
    table decide {
        key = { hdr.probe.isValid(): exact; hdr.probe.hops: ternary; meta.resubmit_count: exact; }
        actions = { do_resubmit; forward; drop_; }
        default_action = drop_();
    }
    apply { decide.apply(); }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) { apply { packet.emit(hdr.ethernet); } }
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
