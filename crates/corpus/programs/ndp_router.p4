// NDP-style router: priority-queue hints from an NDP header plus normal
// ipv4 routing.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
header ndp_t { bit<8> flags; bit<16> seq; }
struct meta_t { bit<1> is_ndp; bit<3> prio; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; ndp_t ndp; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        packet.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            199: parse_ndp;
            default: accept;
        }
    }
    state parse_ndp { packet.extract(hdr.ndp); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    action drop_() { mark_to_drop(standard_metadata); }
    action mark_ndp() {
        meta.is_ndp = 1;
        meta.prio = (bit<3>)hdr.ndp.flags;
        standard_metadata.egress_spec = 1;
    }
    action route(bit<9> port) {
        standard_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ndp_classify {
        key = { hdr.ndp.isValid(): exact; hdr.ndp.flags: ternary; }
        actions = { mark_ndp; drop_; }
        default_action = drop_();
    }
    table ipv4_route {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { route; drop_; }
        default_action = drop_();
    }
    apply {
        ndp_classify.apply();
        ipv4_route.apply();
    }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); packet.emit(hdr.ndp); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
