// Flowlet switching with register state. Register indexes come from a
// table-provided flowlet id, so out-of-bounds accesses are controllable by
// annotations on the action data; the TTL bug needs a validity key fix.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<16> flowlet_id; bit<32> flowlet_ts; bit<16> nhop_idx; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    register<bit<32>>(1024) flowlet_ts_reg;
    register<bit<16>>(1024) flowlet_nhop_reg;
    action drop_() { mark_to_drop(standard_metadata); }
    action lookup_flowlet(bit<16> fid) {
        meta.flowlet_id = fid;
        flowlet_ts_reg.read(meta.flowlet_ts, (bit<32>)fid);
        flowlet_nhop_reg.read(meta.nhop_idx, (bit<32>)fid);
    }
    table flowlet_map {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; hdr.ipv4.dstAddr: ternary; }
        actions = { lookup_flowlet; drop_; }
        default_action = drop_();
    }
    action set_nhop(bit<48> dmac, bit<9> port) {
        hdr.ethernet.dstAddr = dmac;
        standard_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table flowlet_nhop {
        key = { meta.nhop_idx: exact; }
        actions = { set_nhop; drop_; }
        default_action = drop_();
    }
    apply {
        flowlet_map.apply();
        flowlet_nhop.apply();
    }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
