// Variant of flowlet with registers smaller than the id domain: the
// register index bug is reachable and controllable only via an annotation
// on the action data (fid < 100).
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<16> flowlet_id; bit<32> flowlet_ts; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    register<bit<32>>(100) ts_reg;
    action drop_() { mark_to_drop(standard_metadata); }
    action pick_flowlet(bit<16> fid, bit<9> port) {
        meta.flowlet_id = fid;
        ts_reg.read(meta.flowlet_ts, (bit<32>)fid);
        ts_reg.write((bit<32>)fid, meta.flowlet_ts + 1);
        standard_metadata.egress_spec = port;
    }
    table flowlet {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { pick_flowlet; drop_; }
        default_action = drop_();
    }
    apply { flowlet.apply(); }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
