// Multi-protocol parser exercise (tutorial 07-MultiProtocol): a VLAN stack
// plus ipv4/ipv6 choice; stack accesses need validity key fixes.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header vlan_t { bit<3> pcp; bit<1> cfi; bit<12> vid; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
header ipv6_t { bit<8> hopLimit; bit<64> srcLow; bit<64> dstLow; }
struct meta_t { bit<12> vlan_id; }
struct headers { ethernet_t ethernet; vlan_t[2] vlan; ipv4_t ipv4; ipv6_t ipv6; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x8100: parse_vlan;
            0x800: parse_ipv4;
            0x86dd: parse_ipv6;
            default: accept;
        }
    }
    state parse_vlan {
        packet.extract(hdr.vlan.next);
        transition select(hdr.vlan.last.etherType) {
            0x8100: parse_vlan;
            0x800: parse_ipv4;
            0x86dd: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
    state parse_ipv6 { packet.extract(hdr.ipv6); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    action drop_() { mark_to_drop(standard_metadata); }
    action vlan_route(bit<9> port) {
        meta.vlan_id = hdr.vlan[0].vid;
        standard_metadata.egress_spec = port;
    }
    action v4_route(bit<9> port) {
        standard_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    action v6_route(bit<9> port) {
        standard_metadata.egress_spec = port;
        hdr.ipv6.hopLimit = hdr.ipv6.hopLimit - 1;
    }
    table l2 {
        key = { hdr.ethernet.dstAddr: exact; }
        actions = { vlan_route; v4_route; v6_route; drop_; }
        default_action = drop_();
    }
    apply { l2.apply(); }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.vlan[0]); packet.emit(hdr.vlan[1]); packet.emit(hdr.ipv4); packet.emit(hdr.ipv6); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
