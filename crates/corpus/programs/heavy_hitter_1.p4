// Heavy-hitter detection: count sketch registers indexed by a packet-derived
// value. The index is not a function of any key, so the OOB bug needs a key
// fix; the TTL bug needs a validity key.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<16> bucket; bit<32> count; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    register<bit<32>>(4096) sketch;
    action drop_() { mark_to_drop(standard_metadata); }
    action count_bucket(bit<16> bucket) {
        meta.bucket = bucket;
        sketch.read(meta.count, (bit<32>)bucket);
        sketch.write((bit<32>)bucket, meta.count + 1);
    }
    table classify {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { count_bucket; drop_; }
        default_action = drop_();
    }
    action route(bit<9> port) {
        standard_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table forward {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { route; drop_; }
        default_action = drop_();
    }
    apply {
        classify.apply();
        forward.apply();
    }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
