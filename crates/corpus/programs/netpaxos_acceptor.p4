// NetPaxos acceptor: ballot comparison against register state, indexed by
// rule-provided instance id.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header paxos_t { bit<16> inst; bit<16> ballot; bit<32> value; bit<8> msgtype; }
struct meta_t { bit<16> stored_ballot; }
struct headers { ethernet_t ethernet; paxos_t paxos; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x8888: parse_paxos;
            default: accept;
        }
    }
    state parse_paxos { packet.extract(hdr.paxos); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    register<bit<16>>(10000) ballot_reg;
    register<bit<32>>(10000) value_reg;
    action drop_() { mark_to_drop(standard_metadata); }
    action phase1a(bit<16> inst_slot, bit<9> learner_port) {
        ballot_reg.read(meta.stored_ballot, (bit<32>)inst_slot);
        if (hdr.paxos.ballot > meta.stored_ballot) {
            ballot_reg.write((bit<32>)inst_slot, hdr.paxos.ballot);
            value_reg.write((bit<32>)inst_slot, hdr.paxos.value);
        }
        standard_metadata.egress_spec = learner_port;
    }
    table acceptor {
        key = { hdr.paxos.isValid(): exact; hdr.paxos.msgtype: ternary; }
        actions = { phase1a; drop_; }
        default_action = drop_();
    }
    apply { acceptor.apply(); }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.paxos); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
