// Two-row sketch variant with registers sized below the index domain: both
// register accesses can go out of bounds (annotations on action data), and
// two header accesses need validity keys.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
header udp_t { bit<16> srcPort; bit<16> dstPort; }
struct meta_t { bit<16> b0; bit<16> b1; bit<32> c0; bit<32> c1; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; udp_t udp; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        packet.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            17: parse_udp;
            default: accept;
        }
    }
    state parse_udp { packet.extract(hdr.udp); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    register<bit<32>>(600) row0;
    register<bit<32>>(600) row1;
    action drop_() { mark_to_drop(standard_metadata); }
    action sketch_update(bit<16> bucket0, bit<16> bucket1) {
        meta.b0 = bucket0;
        meta.b1 = bucket1;
        row0.read(meta.c0, (bit<32>)bucket0);
        row0.write((bit<32>)bucket0, meta.c0 + 1);
        row1.read(meta.c1, (bit<32>)bucket1);
        row1.write((bit<32>)bucket1, meta.c1 + 1);
    }
    table sketch_sel {
        key = { hdr.ipv4.isValid(): exact; hdr.udp.isValid(): exact; hdr.ipv4.srcAddr: ternary; hdr.udp.dstPort: ternary; }
        actions = { sketch_update; drop_; }
        default_action = drop_();
    }
    action route(bit<9> port) {
        standard_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    action mirror_udp(bit<9> port) {
        standard_metadata.egress_spec = port;
        hdr.udp.dstPort = hdr.udp.srcPort;
    }
    table forward {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { route; mirror_udp; drop_; }
        default_action = drop_();
    }
    apply {
        sketch_sel.apply();
        forward.apply();
    }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); packet.emit(hdr.udp); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
