// HULA-style adaptive load balancing: probe packets update per-tor best-hop
// registers; data packets follow them. Probe header accesses and register
// indexes produce a mix of controllable and fixable bugs.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
header hula_t { bit<24> dst_tor; bit<8> path_util; bit<8> dir; }
struct meta_t { bit<24> dst_tor; bit<8> best_util; bit<16> nhop_idx; }
struct headers { ethernet_t ethernet; hula_t hula; ipv4_t ipv4; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x2345: parse_hula;
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_hula { packet.extract(hdr.hula); transition parse_ipv4; }
    state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    register<bit<8>>(512) best_util_reg;
    register<bit<16>>(512) best_hop_reg;
    action drop_() { mark_to_drop(standard_metadata); }
    action hula_probe(bit<16> tor_idx) {
        best_util_reg.read(meta.best_util, (bit<32>)tor_idx);
        if (hdr.hula.path_util < meta.best_util) {
            best_util_reg.write((bit<32>)tor_idx, hdr.hula.path_util);
            best_hop_reg.write((bit<32>)tor_idx, (bit<16>)standard_metadata.ingress_port);
        }
        standard_metadata.egress_spec = 1;
    }
    action hula_data(bit<16> tor_idx) {
        best_hop_reg.read(meta.nhop_idx, (bit<32>)tor_idx);
        standard_metadata.egress_spec = (bit<9>)meta.nhop_idx;
    }
    table hula_lookup {
        key = { hdr.hula.isValid(): exact; hdr.ipv4.isValid(): exact; hdr.ipv4.dstAddr: ternary; }
        actions = { hula_probe; hula_data; drop_; }
        default_action = drop_();
    }
    action set_dmac(bit<48> dmac) {
        hdr.ethernet.dstAddr = dmac;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table dmac_rewrite {
        key = { meta.nhop_idx: exact; }
        actions = { set_dmac; drop_; }
        default_action = drop_();
    }
    apply {
        hula_lookup.apply();
        dmac_rewrite.apply();
    }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.hula); packet.emit(hdr.ipv4); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
