// NetChain-style in-network key-value chain replication: sequence and
// value registers indexed by rule-provided slot ids.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header kv_t { bit<8> op; bit<32> key_; bit<32> value; bit<16> seq; }
struct meta_t { bit<16> slot; bit<32> stored; bit<16> stored_seq; }
struct headers { ethernet_t ethernet; kv_t kv; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x1234: parse_kv;
            default: accept;
        }
    }
    state parse_kv { packet.extract(hdr.kv); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    register<bit<32>>(1000) store;
    register<bit<16>>(1000) seq_reg;
    action drop_() { mark_to_drop(standard_metadata); }
    action kv_read(bit<16> slot, bit<9> port) {
        meta.slot = slot;
        store.read(meta.stored, (bit<32>)slot);
        hdr.kv.value = meta.stored;
        standard_metadata.egress_spec = port;
    }
    action kv_write(bit<16> slot, bit<9> port) {
        meta.slot = slot;
        seq_reg.read(meta.stored_seq, (bit<32>)slot);
        if (hdr.kv.seq > meta.stored_seq) {
            store.write((bit<32>)slot, hdr.kv.value);
            seq_reg.write((bit<32>)slot, hdr.kv.seq);
        }
        standard_metadata.egress_spec = port;
    }
    table chain {
        key = { hdr.kv.isValid(): exact; hdr.kv.key_: ternary; hdr.kv.op: ternary; }
        actions = { kv_read; kv_write; drop_; }
        default_action = drop_();
    }
    apply { chain.apply(); }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.kv); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
