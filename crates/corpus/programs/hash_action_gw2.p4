// Gateway with a hash-indexed action: the hash output drives a register;
// ipv4 field reads in the hash argument list need a validity key.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<16> hash_val; bit<32> cnt; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    register<bit<32>>(65536) counters;
    action drop_() { mark_to_drop(standard_metadata); }
    action gw_hit(bit<9> port) {
        hash(meta.hash_val, 0, 0, hdr.ipv4.srcAddr, 65535);
        counters.read(meta.cnt, (bit<32>)meta.hash_val);
        counters.write((bit<32>)meta.hash_val, meta.cnt + 1);
        standard_metadata.egress_spec = port;
    }
    table gw {
        key = { hdr.ethernet.dstAddr: exact; }
        actions = { gw_hit; drop_; }
        default_action = drop_();
    }
    apply { gw.apply(); }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
