// Multicast NAT: rewrites the destination of multicast ipv4 packets.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<16> mcast_grp; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    action drop_() { mark_to_drop(standard_metadata); }
    action set_mcast(bit<16> grp, bit<32> new_dst) {
        standard_metadata.mcast_grp = grp;
        hdr.ipv4.dstAddr = new_dst;
        standard_metadata.egress_spec = 1;
    }
    table mc_nat_tbl {
        key = { hdr.ipv4.dstAddr: exact; }
        actions = { set_mcast; drop_; }
        default_action = drop_();
    }
    apply { mc_nat_tbl.apply(); }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
