// The paper's example of an *uncontrollable* dataplane bug: the ingress
// apply block reads hdr.tcp.dstPort inside an if condition before any
// table runs — no prior table can rescue it (Table 1: mplb_router —
// 1 bug remains after Fixes).
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
header tcp_t { bit<16> srcPort; bit<16> dstPort; }
struct meta_t { bit<16> service; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; tcp_t tcp; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        packet.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6: parse_tcp;
            default: accept;
        }
    }
    state parse_tcp { packet.extract(hdr.tcp); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    action drop_() { mark_to_drop(standard_metadata); }
    action to_service(bit<16> svc, bit<9> port) {
        meta.service = svc;
        standard_metadata.egress_spec = port;
    }
    table lb {
        key = { meta.service: exact; }
        actions = { to_service; drop_; }
        default_action = drop_();
    }
    apply {
        // BUG: tcp may be invalid here; no table dominates this read.
        if (hdr.tcp.dstPort == 80) {
            meta.service = 1;
        } else {
            meta.service = 2;
        }
        lb.apply();
    }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); packet.emit(hdr.tcp); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
