// fabric_switch.p4 — the switch.p4 stand-in: a datacenter fabric switch
// with L2 validation, VLAN handling, fabric encapsulation, tunnel
// termination, IPv4/IPv6 FIBs, ECMP, ACLs and rewrite stages.
//
// It reproduces the paper's §5.1 case studies structurally:
//  * validate_outer_ethernet with a `doubletagged` action reading
//    vlan_tag_[0]/vlan_tag_[1] while matching on both validity bits
//    ("missing assumptions" — fully controllable by Infer);
//  * fabric_ingress_dst_lkp matching hdr.fabric_header.dstDevice with NO
//    validity key ("missing validity checks" — needs a key fix);
//  * tunnel decap header copies (inner_ipv4 → ipv4) instrumented with the
//    dontCare heuristic (§4.2 "increasing bug coverage").

header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header vlan_tag_t { bit<3> pcp; bit<1> cfi; bit<12> vid; bit<16> etherType; }
header fabric_header_t { bit<3> packetType; bit<2> headerVersion; bit<8> dstDevice; bit<16> dstPortOrGroup; bit<16> etherType; }
header fabric_header_unicast_t { bit<1> routed; bit<1> outerRouted; bit<1> tunnelTerminate; bit<5> ingressTunnelType; bit<16> nexthopIndex; }
header ipv4_t { bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen; bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum; bit<32> srcAddr; bit<32> dstAddr; }
header ipv6_t { bit<4> version; bit<8> trafficClass; bit<8> nextHdr; bit<8> hopLimit; bit<64> srcLow; bit<64> dstLow; }
header tcp_t { bit<16> srcPort; bit<16> dstPort; bit<32> seqNo; bit<8> flags; }
header udp_t { bit<16> srcPort; bit<16> dstPort; bit<16> length_; bit<16> checksum; }
header vxlan_t { bit<8> flags; bit<24> vni; }
header mpls_t { bit<20> label; bit<3> exp; bit<1> bos; bit<8> mplsTtl; }

struct ingress_metadata_t {
    bit<9> ifindex; bit<16> bd; bit<16> vrf; bit<1> l2_miss; bit<1> l3_routed;
    bit<16> nexthop_index; bit<16> ecmp_group; bit<8> ecmp_offset;
    bit<1> tunnel_terminate; bit<5> tunnel_type; bit<24> tunnel_vni;
    bit<2> port_type; bit<8> drop_reason; bit<1> acl_deny;
}
struct l2_metadata_t {
    bit<3> lkp_pkt_type; bit<16> lkp_mac_type; bit<3> lkp_pcp;
    bit<48> lkp_mac_sa; bit<48> lkp_mac_da; bit<16> stp_group; bit<1> stp_blocked;
}
struct l3_metadata_t {
    bit<32> lkp_ipv4_sa; bit<32> lkp_ipv4_da; bit<8> lkp_ip_proto; bit<8> lkp_ip_ttl;
    bit<16> lkp_l4_sport; bit<16> lkp_l4_dport; bit<1> ipv4_unicast_enabled;
}
struct metadata {
    ingress_metadata_t ingress_metadata;
    l2_metadata_t l2_metadata;
    l3_metadata_t l3_metadata;
}
struct headers {
    ethernet_t ethernet;
    vlan_tag_t[2] vlan_tag_;
    fabric_header_t fabric_header;
    fabric_header_unicast_t fabric_header_unicast;
    ipv4_t ipv4;
    ipv6_t ipv6;
    tcp_t tcp;
    udp_t udp;
    vxlan_t vxlan;
    ipv4_t inner_ipv4;
    mpls_t[3] mpls;
}

parser ParserImpl(packet_in packet, out headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x8100: parse_vlan;
            0x9000: parse_fabric_header;
            0x8847: parse_mpls;
            0x800: parse_ipv4;
            0x86dd: parse_ipv6;
            default: accept;
        }
    }
    state parse_vlan {
        packet.extract(hdr.vlan_tag_.next);
        transition select(hdr.vlan_tag_.last.etherType) {
            0x8100: parse_vlan;
            0x800: parse_ipv4;
            0x86dd: parse_ipv6;
            default: accept;
        }
    }
    state parse_fabric_header {
        packet.extract(hdr.fabric_header);
        transition select(hdr.fabric_header.packetType) {
            1: parse_fabric_unicast;
            default: accept;
        }
    }
    state parse_fabric_unicast {
        packet.extract(hdr.fabric_header_unicast);
        transition select(hdr.fabric_header.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_mpls {
        packet.extract(hdr.mpls.next);
        transition select(hdr.mpls.last.bos) {
            0: parse_mpls;
            1: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        packet.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6: parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_ipv6 { packet.extract(hdr.ipv6); transition accept; }
    state parse_tcp { packet.extract(hdr.tcp); transition accept; }
    state parse_udp {
        packet.extract(hdr.udp);
        transition select(hdr.udp.dstPort) {
            4789: parse_vxlan;
            default: accept;
        }
    }
    state parse_vxlan {
        packet.extract(hdr.vxlan);
        transition parse_inner_ipv4;
    }
    state parse_inner_ipv4 { packet.extract(hdr.inner_ipv4); transition accept; }
}

control ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) {
    action nop() { }
    action drop_packet() { mark_to_drop(standard_metadata); }

    // ---- port / interface mapping ----
    action set_ifindex(bit<9> ifindex, bit<2> port_type) {
        meta.ingress_metadata.ifindex = ifindex;
        meta.ingress_metadata.port_type = port_type;
    }
    table ingress_port_mapping {
        key = { standard_metadata.ingress_port: exact; }
        actions = { set_ifindex; drop_packet; }
        default_action = drop_packet();
    }

    // ---- §5.1 case study 1: validate_outer_ethernet ----
    action malformed_outer_ethernet_packet(bit<8> reason) {
        meta.ingress_metadata.drop_reason = reason;
    }
    action set_valid_outer_unicast_packet_untagged() {
        meta.l2_metadata.lkp_pkt_type = 3w1;
        meta.l2_metadata.lkp_mac_type = hdr.ethernet.etherType;
        meta.l2_metadata.lkp_mac_sa = hdr.ethernet.srcAddr;
        meta.l2_metadata.lkp_mac_da = hdr.ethernet.dstAddr;
    }
    action set_valid_outer_unicast_packet_single_tagged() {
        meta.l2_metadata.lkp_pkt_type = 3w1;
        meta.l2_metadata.lkp_mac_type = hdr.vlan_tag_[0].etherType;
        meta.l2_metadata.lkp_pcp = hdr.vlan_tag_[0].pcp;
    }
    action set_valid_outer_unicast_packet_double_tagged() {
        meta.l2_metadata.lkp_pkt_type = 3w1;
        meta.l2_metadata.lkp_mac_type = hdr.vlan_tag_[1].etherType;
        meta.l2_metadata.lkp_pcp = hdr.vlan_tag_[0].pcp;
    }
    table validate_outer_ethernet {
        key = {
            hdr.vlan_tag_[0].isValid(): exact;
            hdr.vlan_tag_[1].isValid(): exact;
            hdr.ethernet.srcAddr: ternary;
        }
        actions = {
            malformed_outer_ethernet_packet;
            set_valid_outer_unicast_packet_untagged;
            set_valid_outer_unicast_packet_single_tagged;
            set_valid_outer_unicast_packet_double_tagged;
        }
        default_action = malformed_outer_ethernet_packet(1);
    }

    // ---- spanning tree ----
    action set_stp_state(bit<1> blocked) { meta.l2_metadata.stp_blocked = blocked; }
    table spanning_tree {
        key = { meta.ingress_metadata.ifindex: exact; meta.l2_metadata.stp_group: exact; }
        actions = { set_stp_state; nop; }
        default_action = nop();
    }

    // ---- port-vlan to BD mapping ----
    action set_bd(bit<16> bd, bit<16> vrf) {
        meta.ingress_metadata.bd = bd;
        meta.ingress_metadata.vrf = vrf;
        meta.l3_metadata.ipv4_unicast_enabled = 1;
    }
    table port_vlan_mapping {
        key = {
            meta.ingress_metadata.ifindex: exact;
            hdr.vlan_tag_[0].isValid(): exact;
            hdr.vlan_tag_[0].vid: ternary;
        }
        actions = { set_bd; nop; }
        default_action = nop();
    }

    // ---- §5.1 case study 2: fabric_ingress_dst_lkp (missing validity) ----
    action terminate_fabric_unicast_packet() {
        standard_metadata.egress_spec = (bit<9>)hdr.fabric_header.dstPortOrGroup;
        meta.ingress_metadata.tunnel_terminate = hdr.fabric_header_unicast.tunnelTerminate;
        meta.l2_metadata.lkp_mac_type = hdr.fabric_header.etherType;
    }
    table fabric_ingress_dst_lkp {
        key = { hdr.fabric_header.dstDevice: exact; }
        actions = { terminate_fabric_unicast_packet; nop; }
        default_action = nop();
    }

    // ---- tunnel termination (dontCare case study) ----
    action decap_vxlan_inner_ipv4() {
        hdr.ipv4 = hdr.inner_ipv4;
        hdr.vxlan.setInvalid();
        hdr.udp.setInvalid();
        hdr.inner_ipv4.setInvalid();
        meta.ingress_metadata.tunnel_terminate = 1;
    }
    action set_tunnel_vni(bit<24> vni) { meta.ingress_metadata.tunnel_vni = vni; }
    table tunnel {
        key = {
            hdr.vxlan.isValid(): exact;
            hdr.inner_ipv4.isValid(): exact;
            hdr.vxlan.vni: ternary;
        }
        actions = { decap_vxlan_inner_ipv4; set_tunnel_vni; nop; }
        default_action = nop();
    }

    // ---- MPLS ----
    action pop_mpls_label() {
        hdr.mpls.pop_front(1);
        meta.l3_metadata.lkp_ip_proto = hdr.ipv4.protocol;
    }
    table mpls_table {
        key = { hdr.mpls[0].isValid(): exact; hdr.mpls[0].label: ternary; }
        actions = { pop_mpls_label; nop; }
        default_action = nop();
    }

    // ---- L2 ----
    action dmac_hit(bit<9> ifindex) {
        meta.ingress_metadata.ifindex = ifindex;
        standard_metadata.egress_spec = ifindex;
    }
    action dmac_miss() { meta.ingress_metadata.l2_miss = 1; }
    table dmac {
        key = { meta.ingress_metadata.bd: exact; meta.l2_metadata.lkp_mac_da: exact; }
        actions = { dmac_hit; dmac_miss; }
        default_action = dmac_miss();
    }
    action smac_learn() { meta.l2_metadata.stp_group = 1; }
    table smac {
        key = { meta.ingress_metadata.bd: exact; meta.l2_metadata.lkp_mac_sa: exact; }
        actions = { smac_learn; nop; }
        default_action = nop();
    }

    // ---- L3 source/dest lookups ----
    action set_l3_lkp_fields() {
        meta.l3_metadata.lkp_ipv4_sa = hdr.ipv4.srcAddr;
        meta.l3_metadata.lkp_ipv4_da = hdr.ipv4.dstAddr;
        meta.l3_metadata.lkp_ip_proto = hdr.ipv4.protocol;
        meta.l3_metadata.lkp_ip_ttl = hdr.ipv4.ttl;
    }
    table validate_ipv4_packet {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.version: ternary; }
        actions = { set_l3_lkp_fields; drop_packet; nop; }
        default_action = nop();
    }

    action fib_hit_nexthop(bit<16> nexthop_index) {
        meta.ingress_metadata.nexthop_index = nexthop_index;
        meta.ingress_metadata.l3_routed = 1;
    }
    action fib_hit_ecmp(bit<16> ecmp_group) {
        meta.ingress_metadata.ecmp_group = ecmp_group;
        meta.ingress_metadata.l3_routed = 1;
    }
    table ipv4_fib {
        key = { meta.ingress_metadata.vrf: exact; meta.l3_metadata.lkp_ipv4_da: lpm; }
        actions = { fib_hit_nexthop; fib_hit_ecmp; nop; }
        default_action = nop();
    }
    action set_ecmp_nexthop(bit<16> nexthop_index) {
        meta.ingress_metadata.nexthop_index = nexthop_index;
    }
    table ecmp_group_tbl {
        key = { meta.ingress_metadata.ecmp_group: exact; meta.ingress_metadata.ecmp_offset: exact; }
        actions = { set_ecmp_nexthop; nop; }
        default_action = nop();
    }

    // ---- nexthop → rewrite info ----
    action set_nexthop_details(bit<9> port, bit<16> bd) {
        standard_metadata.egress_spec = port;
        meta.ingress_metadata.bd = bd;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table nexthop {
        key = { meta.ingress_metadata.nexthop_index: exact; }
        actions = { set_nexthop_details; drop_packet; }
        default_action = drop_packet();
    }

    // ---- ACLs ----
    action acl_deny() { meta.ingress_metadata.acl_deny = 1; mark_to_drop(standard_metadata); }
    action acl_permit() { meta.ingress_metadata.acl_deny = 0; }
    table ip_acl {
        key = {
            hdr.ipv4.isValid(): exact;
            hdr.tcp.isValid(): exact;
            hdr.ipv4.srcAddr: ternary;
            hdr.ipv4.dstAddr: ternary;
            hdr.tcp.dstPort: ternary;
        }
        actions = { acl_deny; acl_permit; nop; }
        default_action = nop();
    }
    action set_copp(bit<8> reason) { meta.ingress_metadata.drop_reason = reason; }
    table system_acl {
        key = { meta.ingress_metadata.drop_reason: ternary; meta.ingress_metadata.acl_deny: exact; }
        actions = { set_copp; drop_packet; nop; }
        default_action = nop();
    }

    apply {
        ingress_port_mapping.apply();
        validate_outer_ethernet.apply();
        if (meta.ingress_metadata.port_type == 0) {
            spanning_tree.apply();
            port_vlan_mapping.apply();
        } else {
            fabric_ingress_dst_lkp.apply();
        }
        tunnel.apply();
        mpls_table.apply();
        validate_ipv4_packet.apply();
        dmac.apply();
        smac.apply();
        if (meta.ingress_metadata.l2_miss == 1 || meta.l3_metadata.ipv4_unicast_enabled == 1) {
            ipv4_fib.apply();
            if (meta.ingress_metadata.l3_routed == 1) {
                ecmp_group_tbl.apply();
                nexthop.apply();
            }
        }
        ip_acl.apply();
        system_acl.apply();
    }
}

control egress(inout headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) {
    action nop() { }
    action rewrite_smac(bit<48> smac) { hdr.ethernet.srcAddr = smac; }
    table egress_smac_rewrite {
        key = { meta.ingress_metadata.bd: exact; }
        actions = { rewrite_smac; nop; }
        default_action = nop();
    }
    action push_vlan(bit<12> vid) {
        hdr.vlan_tag_.push_front(1);
        hdr.vlan_tag_[0].setValid();
        hdr.vlan_tag_[0].vid = vid;
        hdr.vlan_tag_[0].pcp = 0;
        hdr.vlan_tag_[0].cfi = 0;
        hdr.vlan_tag_[0].etherType = hdr.ethernet.etherType;
        hdr.ethernet.etherType = 0x8100;
    }
    table egress_vlan_xlate {
        key = { standard_metadata.egress_port: exact; meta.ingress_metadata.bd: exact; }
        actions = { push_vlan; nop; }
        default_action = nop();
    }
    apply {
        egress_smac_rewrite.apply();
        egress_vlan_xlate.apply();
    }
}
control verifyChecksum(inout headers hdr, inout metadata meta) { apply { } }
control computeChecksum(inout headers hdr, inout metadata meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply {
        packet.emit(hdr.ethernet);
        packet.emit(hdr.vlan_tag_[0]);
        packet.emit(hdr.vlan_tag_[1]);
        packet.emit(hdr.fabric_header);
        packet.emit(hdr.fabric_header_unicast);
        packet.emit(hdr.ipv4);
        packet.emit(hdr.ipv6);
        packet.emit(hdr.tcp);
        packet.emit(hdr.udp);
        packet.emit(hdr.vxlan);
        packet.emit(hdr.inner_ipv4);
    }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
