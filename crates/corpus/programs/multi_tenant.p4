// The paper's §4.2 multi-table snippet as a standalone program: table t1
// (key k1) may validate header H; table t2 (keys k1,k2 ⊇ t1's keys) runs
// use_H which reads H. The rule combination (k1=v, nop) ∈ t1 with
// (k1=v, k2=*, use_H) ∈ t2 always triggers the bug — controllable only by
// a multi-table assertion joining both tables' contents.
header key_t { bit<8> k1; bit<8> k2; }
header h_t { bit<16> f; }
struct meta_t { bit<16> x; }
struct headers { key_t keyh; h_t h; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start { packet.extract(hdr.keyh); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    action drop_() { mark_to_drop(standard_metadata); }
    action validate_H() { hdr.h.setValid(); hdr.h.f = 0; }
    action nop_() { }
    table t1 {
        key = { hdr.keyh.k1: exact; }
        actions = { validate_H; nop_; }
        default_action = nop_();
    }
    action use_H(bit<9> p) { meta.x = hdr.h.f; standard_metadata.egress_spec = p; }
    action skip_(bit<9> p) { standard_metadata.egress_spec = p; }
    table t2 {
        key = { hdr.keyh.k1: exact; hdr.keyh.k2: exact; }
        actions = { use_H; skip_; drop_; }
        default_action = drop_();
    }
    apply {
        t1.apply();
        t2.apply();
    }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) { apply { packet.emit(hdr.keyh); packet.emit(hdr.h); } }
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
