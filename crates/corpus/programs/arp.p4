// ARP responder. Every table matches on the validity of each header its
// actions touch, so Infer controls all bugs with existing keys (Table 1:
// arp — 0 bugs after Infer, 0 keys added).
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header arp_t { bit<16> htype; bit<16> ptype; bit<16> oper; bit<48> sha; bit<32> spa; bit<48> tha; bit<32> tpa; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<32> dst_ip; }
struct headers { ethernet_t ethernet; arp_t arp; ipv4_t ipv4; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x806: parse_arp;
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_arp { packet.extract(hdr.arp); transition accept; }
    state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    action drop_() { mark_to_drop(standard_metadata); }
    action arp_reply(bit<48> my_mac) {
        hdr.ethernet.dstAddr = hdr.ethernet.srcAddr;
        hdr.ethernet.srcAddr = my_mac;
        hdr.arp.oper = 2;
        hdr.arp.tha = hdr.arp.sha;
        hdr.arp.tpa = hdr.arp.spa;
        hdr.arp.sha = my_mac;
        standard_metadata.egress_spec = standard_metadata.ingress_port;
    }
    action forward_v4(bit<9> port) {
        meta.dst_ip = hdr.ipv4.dstAddr;
        standard_metadata.egress_spec = port;
    }
    table arp_resp {
        key = {
            hdr.arp.isValid(): exact;
            hdr.ipv4.isValid(): exact;
            hdr.arp.oper: ternary;
            hdr.ipv4.dstAddr: ternary;
        }
        actions = { arp_reply; forward_v4; drop_; }
        default_action = drop_();
    }
    apply { arp_resp.apply(); }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.arp); packet.emit(hdr.ipv4); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
