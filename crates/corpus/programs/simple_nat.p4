// The paper's running example (Fig. 1): a trimmed simple_nat.
// Signature bugs: ternary-mask/invalid-header key read in `nat` (§2.1),
// unguarded TTL decrement in ipv4_lpm.set_nhop, and egress_spec left
// unset when nat_miss_ext_to_int runs.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
header tcp_t { bit<16> srcPort; bit<16> dstPort; }
struct meta_inner_t { bit<1> do_forward; bit<32> ipv4_sa; bit<32> ipv4_da; bit<16> tcp_sp; bit<16> tcp_dp; bit<32> nhop_ipv4; bit<1> is_ext_if; }
struct metadata { meta_inner_t meta; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; tcp_t tcp; }

parser ParserImpl(packet_in packet, out headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        packet.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6: parse_tcp;
            default: accept;
        }
    }
    state parse_tcp { packet.extract(hdr.tcp); transition accept; }
}

control ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) {
    action drop_() { mark_to_drop(standard_metadata); }
    action set_if_info(bit<1> is_ext) { meta.meta.is_ext_if = is_ext; }
    table if_info {
        key = { standard_metadata.ingress_port: exact; }
        actions = { set_if_info; drop_; }
        default_action = drop_();
    }
    action nat_hit_int_to_ext(bit<32> srcAddr, bit<9> p) {
        meta.meta.do_forward = 1w1;
        meta.meta.ipv4_sa = srcAddr;
        meta.meta.nhop_ipv4 = hdr.ipv4.dstAddr;
        standard_metadata.egress_spec = p;
    }
    action nat_hit_ext_to_int(bit<32> dstAddr, bit<9> p) {
        meta.meta.do_forward = 1w1;
        meta.meta.ipv4_da = dstAddr;
        meta.meta.nhop_ipv4 = dstAddr;
        standard_metadata.egress_spec = p;
    }
    action nat_miss_ext_to_int() { meta.meta.do_forward = 1w0; }
    action nat_miss_int_to_ext() { meta.meta.do_forward = 1w0; mark_to_drop(standard_metadata); }
    table nat {
        key = {
            meta.meta.is_ext_if: exact;
            hdr.ipv4.isValid(): exact;
            hdr.tcp.isValid(): exact;
            hdr.ipv4.srcAddr: ternary;
            hdr.ipv4.dstAddr: ternary;
        }
        actions = { drop_; nat_hit_int_to_ext; nat_hit_ext_to_int; nat_miss_ext_to_int; nat_miss_int_to_ext; }
        default_action = drop_();
    }
    action set_nhop(bit<32> nhop_ipv4, bit<9> port) {
        meta.meta.nhop_ipv4 = nhop_ipv4;
        standard_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { meta.meta.nhop_ipv4: lpm; }
        actions = { set_nhop; drop_; }
        default_action = drop_();
    }
    action set_dmac(bit<48> dmac) { hdr.ethernet.dstAddr = dmac; }
    table forward {
        key = { meta.meta.nhop_ipv4: exact; }
        actions = { set_dmac; drop_; }
        default_action = drop_();
    }
    apply {
        if_info.apply();
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
            forward.apply();
        }
    }
}
control egress(inout headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) {
    action rewrite_src(bit<48> smac) { hdr.ethernet.srcAddr = smac; }
    action nop() { }
    table send_frame {
        key = { standard_metadata.egress_port: exact; }
        actions = { rewrite_src; nop; }
        default_action = nop();
    }
    apply { send_frame.apply(); }
}
control verifyChecksum(inout headers hdr, inout metadata meta) { apply { } }
control computeChecksum(inout headers hdr, inout metadata meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); packet.emit(hdr.tcp); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
