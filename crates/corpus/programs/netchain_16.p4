// P4-16 port of netchain with chain forwarding: adds a next-chain-hop
// rewrite whose UDP access needs a validity key fix.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
header udp_t { bit<16> srcPort; bit<16> dstPort; }
header kv_t { bit<8> op; bit<32> key_; bit<32> value; bit<16> seq; }
struct meta_t { bit<16> slot; bit<32> stored; bit<16> stored_seq; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; udp_t udp; kv_t kv; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        packet.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            17: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        packet.extract(hdr.udp);
        transition select(hdr.udp.dstPort) {
            9000: parse_kv;
            default: accept;
        }
    }
    state parse_kv { packet.extract(hdr.kv); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    register<bit<32>>(700) store;
    register<bit<16>>(700) seq_reg;
    action drop_() { mark_to_drop(standard_metadata); }
    action kv_read(bit<16> slot, bit<9> port) {
        meta.slot = slot;
        store.read(meta.stored, (bit<32>)slot);
        hdr.kv.value = meta.stored;
        standard_metadata.egress_spec = port;
    }
    action kv_write(bit<16> slot, bit<9> port) {
        meta.slot = slot;
        seq_reg.read(meta.stored_seq, (bit<32>)slot);
        store.write((bit<32>)slot, hdr.kv.value);
        seq_reg.write((bit<32>)slot, hdr.kv.seq);
        standard_metadata.egress_spec = port;
    }
    table chain {
        key = { hdr.kv.isValid(): exact; hdr.kv.key_: ternary; hdr.kv.op: ternary; }
        actions = { kv_read; kv_write; drop_; }
        default_action = drop_();
    }
    action next_chain_hop(bit<32> nhop, bit<9> port) {
        hdr.ipv4.dstAddr = nhop;
        hdr.udp.dstPort = 9000;
        standard_metadata.egress_spec = port;
    }
    table chain_fwd {
        key = { hdr.kv.op: exact; }
        actions = { next_chain_hop; drop_; }
        default_action = drop_();
    }
    apply {
        chain.apply();
        chain_fwd.apply();
    }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); packet.emit(hdr.udp); packet.emit(hdr.kv); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
