// Modeled on p4c issue 894: conditional header emit with accesses guarded
// by the wrong header's validity.
header h1_t { bit<8> a; bit<8> b; }
header h2_t { bit<16> c; }
struct meta_t { bit<8> x; }
struct headers { h1_t h1; h2_t h2; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.h1);
        transition select(hdr.h1.a) {
            1: parse_h2;
            default: accept;
        }
    }
    state parse_h2 { packet.extract(hdr.h2); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    action drop_() { mark_to_drop(standard_metadata); }
    action use_h2(bit<9> port) {
        // BUG pattern: guarded by h1's validity, not h2's.
        meta.x = (bit<8>)hdr.h2.c;
        standard_metadata.egress_spec = port;
    }
    action use_h1(bit<9> port) {
        meta.x = hdr.h1.b;
        standard_metadata.egress_spec = port;
    }
    table dispatch {
        key = { hdr.h1.isValid(): exact; hdr.h1.a: ternary; }
        actions = { use_h1; use_h2; drop_; }
        default_action = drop_();
    }
    apply { dispatch.apply(); }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.h1); packet.emit(hdr.h2); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
