// Two-stage ECMP. ecmp_nhop.set_nhop decrements the TTL of a possibly
// invalid ipv4 header; neither table matches on its validity, so Fixes
// must add hdr.ipv4.isValid() (Table 1: ecmp_2 — 1 key added).
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<16> ecmp_group; bit<16> ecmp_select; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    action drop_() { mark_to_drop(standard_metadata); }
    action set_group(bit<16> gid, bit<16> sel) {
        meta.ecmp_group = gid;
        meta.ecmp_select = sel;
    }
    table ecmp_group {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { set_group; drop_; }
        default_action = drop_();
    }
    action set_nhop(bit<48> dmac, bit<9> port) {
        hdr.ethernet.dstAddr = dmac;
        standard_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ecmp_nhop {
        key = { meta.ecmp_group: exact; meta.ecmp_select: exact; }
        actions = { set_nhop; drop_; }
        default_action = drop_();
    }
    apply {
        ecmp_group.apply();
        ecmp_nhop.apply();
    }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
