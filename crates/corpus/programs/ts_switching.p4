// Timestamp-based switching: per-port last-seen registers.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<48> last_ts; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    register<bit<48>>(512) last_seen;
    action drop_() { mark_to_drop(standard_metadata); }
    action record_and_route(bit<9> port) {
        last_seen.read(meta.last_ts, (bit<32>)standard_metadata.ingress_port);
        last_seen.write((bit<32>)standard_metadata.ingress_port, standard_metadata.ingress_global_timestamp);
        standard_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table route {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { record_and_route; drop_; }
        default_action = drop_();
    }
    apply { route.apply(); }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
