// Linear Road toll benchmark (trimmed): position reports update per-segment
// state; toll notifications and accident alerts are table-driven. Contains
// one genuine dataplane bug (unguarded lr.speed read in the apply block
// before any table) that survives Fixes, as in Table 1.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header lr_t { bit<8> msgtype; bit<16> vid; bit<8> speed; bit<8> lane; bit<16> seg; bit<8> dir; }
header lr_toll_t { bit<16> toll; bit<32> balance; }
struct meta_t { bit<32> seg_cnt; bit<32> seg_speed_sum; bit<8> accident; bit<16> toll; }
struct headers { ethernet_t ethernet; lr_t lr; lr_toll_t lr_toll; }

parser ParserImpl(packet_in packet, out headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x5678: parse_lr;
            default: accept;
        }
    }
    state parse_lr {
        packet.extract(hdr.lr);
        transition select(hdr.lr.msgtype) {
            2: parse_toll;
            default: accept;
        }
    }
    state parse_toll { packet.extract(hdr.lr_toll); transition accept; }
}

control ingress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) {
    register<bit<32>>(400) seg_count_reg;
    register<bit<32>>(400) seg_speed_reg;
    register<bit<8>>(400) accident_reg;
    action drop_() { mark_to_drop(standard_metadata); }
    action pos_report(bit<16> seg_slot) {
        seg_count_reg.read(meta.seg_cnt, (bit<32>)seg_slot);
        seg_count_reg.write((bit<32>)seg_slot, meta.seg_cnt + 1);
        seg_speed_reg.read(meta.seg_speed_sum, (bit<32>)seg_slot);
        seg_speed_reg.write((bit<32>)seg_slot, meta.seg_speed_sum + (bit<32>)hdr.lr.speed);
        standard_metadata.egress_spec = 1;
    }
    action accident_alert(bit<16> seg_slot, bit<9> port) {
        accident_reg.read(meta.accident, (bit<32>)seg_slot);
        standard_metadata.egress_spec = port;
    }
    action mark_accident(bit<16> seg_slot) {
        accident_reg.write((bit<32>)seg_slot, 1);
        standard_metadata.egress_spec = 1;
    }
    table position {
        key = { hdr.lr.isValid(): exact; hdr.lr.msgtype: ternary; hdr.lr.seg: ternary; }
        actions = { pos_report; accident_alert; mark_accident; drop_; }
        default_action = drop_();
    }
    action set_toll(bit<16> toll, bit<9> port) {
        meta.toll = toll;
        hdr.lr_toll.toll = toll;
        standard_metadata.egress_spec = port;
    }
    table toll_tbl {
        key = { meta.accident: exact; hdr.lr.seg: ternary; }
        actions = { set_toll; drop_; }
        default_action = drop_();
    }
    action balance_update(bit<32> delta) {
        hdr.lr_toll.balance = hdr.lr_toll.balance + delta;
    }
    table balance_tbl {
        key = { hdr.lr_toll.isValid(): exact; hdr.lr_toll.toll: ternary; }
        actions = { balance_update; drop_; }
        default_action = drop_();
    }
    apply {
        // Genuine dataplane bug: lr may be invalid here and no table
        // dominates this read.
        if (hdr.lr.speed > 100) {
            meta.accident = 1;
        }
        position.apply();
        toll_tbl.apply();
        balance_tbl.apply();
    }
}
control egress(inout headers hdr, inout meta_t meta, inout standard_metadata_t standard_metadata) { apply { } }
control verifyChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control computeChecksum(inout headers hdr, inout meta_t meta) { apply { } }
control DeparserImpl(packet_out packet, in headers hdr) {
    apply { packet.emit(hdr.ethernet); packet.emit(hdr.lr); packet.emit(hdr.lr_toll); }
}
V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
