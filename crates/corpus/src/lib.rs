#![warn(missing_docs)]

//! # bf4-corpus — the evaluation program suite
//!
//! Stands in for the paper's 94 openly-available V1Model programs
//! (Table 1). Each program is written from scratch in the P4-16 subset the
//! frontend supports, reproducing the named program's *bug structure* —
//! which bug classes appear, which are controllable with existing keys,
//! which need key fixes, and which are genuine dataplane bugs:
//!
//! * `simple_nat` — the paper's running example (Fig. 1);
//! * `fabric_switch` — the `switch.p4` stand-in with the §5.1 case
//!   studies (validate_outer_ethernet double-tagging, fabric header
//!   missing-validity, tunnel-decap `dontCare` copies);
//! * `mplb_router`, `linearroad` — programs with genuine dataplane bugs
//!   that survive Fixes, as in Table 1;
//! * the remainder covers registers (netchain, heavy hitters, paxos),
//!   header stacks (multiprotocol, fabric mpls/vlan), resubmit/clone
//!   externs and multi-stage routing.

use std::collections::BTreeMap;

/// Expected verification shape of a corpus program — the qualitative
/// content of one Table-1 row. Exact counts are asserted by the
/// integration suite after being produced by the pipeline itself; the
/// expectations here encode the *shape* that must hold for the
/// reproduction to be faithful.
#[derive(Clone, Copy, Debug)]
pub struct Expected {
    /// Exact bug count with all rules possible (regression lock; the
    /// pipeline is deterministic).
    pub bugs_total: usize,
    /// Exact count of bugs still reachable after inference.
    pub bugs_after_infer: usize,
    /// Exact number of keys Fixes adds.
    pub keys_added: usize,
    /// At least this many bugs with all rules possible.
    pub min_bugs: usize,
    /// Inference must strictly reduce the reachable-bug count.
    pub infer_reduces: bool,
    /// Number of bugs that must remain after Fixes (genuine dataplane
    /// bugs); `0` for fully fixable programs.
    pub bugs_after_fixes: usize,
    /// Whether Fixes must add at least one key.
    pub adds_keys: bool,
    /// Whether the egress-spec special fix is expected.
    pub egress_spec_fix: bool,
}

/// One corpus entry.
#[derive(Clone, Copy, Debug)]
pub struct CorpusProgram {
    /// Program name (Table-1 row label).
    pub name: &'static str,
    /// Full P4 source.
    pub source: &'static str,
    /// Expected verification shape.
    pub expect: Expected,
}

macro_rules! program {
    ($name:literal, $file:literal, $expect:expr) => {
        CorpusProgram {
            name: $name,
            source: include_str!(concat!("../programs/", $file)),
            expect: $expect,
        }
    };
}

/// All corpus programs, in Table-1 order.
pub fn all() -> Vec<CorpusProgram> {
    vec![
        program!(
            "07-MultiProtocol",
            "multiprotocol.p4",
            Expected {
                bugs_total: 3,
                bugs_after_infer: 3,
                keys_added: 3,
                min_bugs: 2,
                infer_reduces: false,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "arp",
            "arp.p4",
            Expected {
                bugs_total: 3,
                bugs_after_infer: 0,
                keys_added: 0,
                min_bugs: 1,
                infer_reduces: true,
                bugs_after_fixes: 0,
                adds_keys: false,
                egress_spec_fix: false,
            }
        ),
        program!(
            "ecmp_2",
            "ecmp_2.p4",
            Expected {
                bugs_total: 2,
                bugs_after_infer: 2,
                keys_added: 2,
                min_bugs: 1,
                infer_reduces: false,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "flowlet",
            "flowlet.p4",
            Expected {
                bugs_total: 3,
                bugs_after_infer: 1,
                keys_added: 1,
                min_bugs: 1,
                infer_reduces: false,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "flowlet_switching",
            "flowlet_switching.p4",
            Expected {
                bugs_total: 2,
                bugs_after_infer: 0,
                keys_added: 0,
                min_bugs: 1,
                infer_reduces: true,
                bugs_after_fixes: 0,
                adds_keys: false,
                egress_spec_fix: false,
            }
        ),
        program!(
            "hash_action_gw2",
            "hash_action_gw2.p4",
            Expected {
                bugs_total: 1,
                bugs_after_infer: 1,
                keys_added: 1,
                min_bugs: 1,
                infer_reduces: false,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "heavy_hitter_1",
            "heavy_hitter_1.p4",
            Expected {
                bugs_total: 4,
                bugs_after_infer: 2,
                keys_added: 1,
                min_bugs: 1,
                infer_reduces: false,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "heavy_hitter_2",
            "heavy_hitter_2.p4",
            Expected {
                bugs_total: 6,
                bugs_after_infer: 3,
                keys_added: 2,
                min_bugs: 2,
                infer_reduces: true,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "hula",
            "hula.p4",
            Expected {
                bugs_total: 5,
                bugs_after_infer: 1,
                keys_added: 1,
                min_bugs: 2,
                infer_reduces: true,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "issue894",
            "issue894.p4",
            Expected {
                bugs_total: 1,
                bugs_after_infer: 1,
                keys_added: 1,
                min_bugs: 1,
                infer_reduces: false,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "linearroad",
            "linearroad.p4",
            Expected {
                bugs_total: 7,
                bugs_after_infer: 2,
                keys_added: 2,
                min_bugs: 3,
                infer_reduces: true,
                bugs_after_fixes: 1,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "mc_nat",
            "mc_nat.p4",
            Expected {
                bugs_total: 1,
                bugs_after_infer: 1,
                keys_added: 1,
                min_bugs: 1,
                infer_reduces: false,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "mplb_router",
            "mplb_router.p4",
            Expected {
                bugs_total: 1,
                bugs_after_infer: 1,
                keys_added: 0,
                min_bugs: 1,
                infer_reduces: false,
                bugs_after_fixes: 1,
                adds_keys: false,
                egress_spec_fix: false,
            }
        ),
        program!(
            "ndp_router",
            "ndp_router.p4",
            Expected {
                bugs_total: 4,
                bugs_after_infer: 2,
                keys_added: 1,
                min_bugs: 2,
                infer_reduces: true,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "netchain",
            "netchain.p4",
            Expected {
                bugs_total: 5,
                bugs_after_infer: 0,
                keys_added: 0,
                min_bugs: 1,
                infer_reduces: true,
                bugs_after_fixes: 0,
                adds_keys: false,
                egress_spec_fix: false,
            }
        ),
        program!(
            "netchain_16",
            "netchain_16.p4",
            Expected {
                bugs_total: 6,
                bugs_after_infer: 1,
                keys_added: 1,
                min_bugs: 2,
                infer_reduces: true,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
        program!(
            "netpaxos_acceptor",
            "netpaxos_acceptor.p4",
            Expected {
                bugs_total: 3,
                bugs_after_infer: 0,
                keys_added: 0,
                min_bugs: 1,
                infer_reduces: true,
                bugs_after_fixes: 0,
                adds_keys: false,
                egress_spec_fix: false,
            }
        ),
        program!(
            "resubmit",
            "resubmit.p4",
            Expected {
                bugs_total: 2,
                bugs_after_infer: 0,
                keys_added: 0,
                min_bugs: 0,
                infer_reduces: false,
                bugs_after_fixes: 0,
                adds_keys: false,
                egress_spec_fix: false,
            }
        ),
        program!(
            "simple_nat",
            "simple_nat.p4",
            Expected {
                bugs_total: 4,
                bugs_after_infer: 2,
                keys_added: 1,
                min_bugs: 3,
                infer_reduces: true,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: true,
            }
        ),
        program!(
            "fabric_switch",
            "fabric_switch.p4",
            Expected {
                bugs_total: 14,
                bugs_after_infer: 4,
                keys_added: 3,
                min_bugs: 8,
                infer_reduces: true,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: true,
            }
        ),
        program!(
            "multi_tenant",
            "multi_tenant.p4",
            Expected {
                bugs_total: 1,
                bugs_after_infer: 0,
                keys_added: 0,
                min_bugs: 1,
                infer_reduces: true,
                bugs_after_fixes: 0,
                adds_keys: false,
                egress_spec_fix: false,
            }
        ),
        program!(
            "ts_switching",
            "ts_switching.p4",
            Expected {
                bugs_total: 2,
                bugs_after_infer: 2,
                keys_added: 2,
                min_bugs: 1,
                infer_reduces: false,
                bugs_after_fixes: 0,
                adds_keys: true,
                egress_spec_fix: false,
            }
        ),
    ]
}

/// Look up a program by name.
pub fn by_name(name: &str) -> Option<CorpusProgram> {
    all().into_iter().find(|p| p.name == name)
}

/// The largest program (the `switch.p4` stand-in).
pub fn largest() -> CorpusProgram {
    by_name("fabric_switch").expect("fabric_switch present")
}

/// Lines of code per program (non-empty lines, as in Table 1).
pub fn loc_table() -> BTreeMap<&'static str, usize> {
    all()
        .into_iter()
        .map(|p| {
            (
                p.name,
                p.source.lines().filter(|l| !l.trim().is_empty()).count(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_named_uniquely() {
        let programs = all();
        assert!(programs.len() >= 20);
        let mut names: Vec<&str> = programs.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), programs.len());
    }

    #[test]
    fn every_program_parses_and_typechecks() {
        for p in all() {
            if let Err(e) = bf4_p4::frontend(p.source) {
                panic!("{}: {e}", p.name);
            }
        }
    }

    #[test]
    fn largest_is_fabric_switch() {
        let l = largest();
        assert_eq!(l.name, "fabric_switch");
        let loc = loc_table();
        let max = loc.iter().max_by_key(|(_, &v)| v).unwrap();
        assert_eq!(*max.0, "fabric_switch");
    }
}
