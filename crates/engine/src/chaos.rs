//! The chaos invariant: injected faults may *degrade* a report, never
//! *flip* it.
//!
//! Every failure-handling path in the pipeline answers a fault the same
//! way — conservatively. A solver error or timeout turns a definite
//! verdict into `Undecided` ("possible bug"); a worker panic turns a
//! whole program into a `Report.degraded` entry; a cache I/O error costs
//! cache misses. What must **never** happen is a flip between "bug" and
//! "no bug": an injected fault silently making bf4 report a buggy program
//! clean (or the reverse) would void the paper's core promise.
//!
//! [`check_conservative`] encodes that as an order on [`BugStatus`]:
//!
//! ```text
//! Unreachable (0)  <  Controlled (1)  <  Reachable / Uncontrolled (2)  <  Undecided (3)
//! ```
//!
//! Rank 0–2 climbs with how loudly the bug is reported; `Undecided` sits
//! on top because "could not decide, treat as possible bug" is the most
//! conservative claim of all — it is what every fault path degrades to.
//! A faulty run's status may stay equal or climb in rank, never descend:
//! descending means an injected fault manufactured confidence.
//!
//! The chaos test suite and the `report chaos` CI gate run the corpus
//! under seeded fault schedules and apply this check to every program.

use bf4_core::driver::Report;
use bf4_core::reach::BugStatus;
use std::collections::BTreeMap;

/// Conservativeness rank of a status (see the module docs). `Reachable`
/// and `Uncontrolled` share a rank: both report the bug at full volume,
/// and an injected fault that aborts inference legitimately leaves a bug
/// at `Reachable` where the clean run refined it to `Uncontrolled`.
fn rank(status: BugStatus) -> u8 {
    match status {
        BugStatus::Unreachable => 0,
        BugStatus::Controlled => 1,
        BugStatus::Reachable | BugStatus::Uncontrolled => 2,
        BugStatus::Undecided => 3,
    }
}

/// A whole-program failure: the run died (panic, frontend abort) and
/// reported that instead of bug verdicts.
fn whole_run_failed(r: &Report) -> bool {
    r.bugs.is_empty()
        && r.bugs_total == 0
        && r.degraded
            .iter()
            .any(|d| d.stage == "pipeline" || d.stage == "frontend")
}

/// Verify that `faulty` (a report produced under fault injection) is a
/// conservative degradation of `base` (the fault-free report of the same
/// program). Returns `Err` with a human-readable violation otherwise.
///
/// Accepted degradations:
///
/// * byte-identical verdicts (the fault was absorbed);
/// * any bug's status climbing in conservativeness rank (typically to
///   `Undecided`);
/// * the whole run collapsing into a `Report.degraded` entry with no
///   verdicts claimed at all.
///
/// Rejected flips:
///
/// * a bug present in `base` missing from `faulty`;
/// * any bug's status descending in rank (e.g. `Reachable` →
///   `Unreachable`: a fault manufactured a "no bug" claim).
pub fn check_conservative(base: &Report, faulty: &Report) -> Result<(), String> {
    if whole_run_failed(faulty) {
        return Ok(());
    }

    // Identity: (kind, line, description) — stable across runs because
    // instrumentation is deterministic; status deliberately excluded.
    let identity = |b: &bf4_core::driver::BugReport| {
        (b.kind.to_string(), b.line, b.description.clone())
    };
    let mut faulty_bugs: BTreeMap<_, Vec<BugStatus>> = BTreeMap::new();
    for b in &faulty.bugs {
        faulty_bugs.entry(identity(b)).or_default().push(b.status);
    }

    for b in &base.bugs {
        let key = identity(b);
        let Some(statuses) = faulty_bugs.get_mut(&key) else {
            return Err(format!(
                "bug [{}] line {} `{}` present fault-free ({:?}) but missing \
                 under faults",
                b.kind, b.line, b.description, b.status
            ));
        };
        let Some(status) = statuses.pop() else {
            return Err(format!(
                "bug [{}] line {} `{}` reported fewer times under faults",
                b.kind, b.line, b.description
            ));
        };
        if rank(status) < rank(b.status) {
            return Err(format!(
                "bug [{}] line {} `{}` flipped {:?} → {:?}: an injected fault \
                 must never increase confidence",
                b.kind, b.line, b.description, b.status, status
            ));
        }
    }
    // Extra bugs in `faulty` (none today — instrumentation is fault
    // independent) would be over-reporting: conservative, accepted.
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf4_core::driver::{BugReport, StageFailure};
    use bf4_ir::BugKind;
    use std::time::Duration;

    fn bug(line: u32, status: BugStatus) -> BugReport {
        BugReport {
            kind: BugKind::InvalidHeaderAccess,
            description: format!("bug at {line}"),
            line,
            table: None,
            status,
        }
    }

    fn report(bugs: Vec<BugReport>) -> Report {
        let mut r = Report::failed("none", String::new(), Duration::ZERO);
        r.degraded.clear();
        r.bugs_total = bugs.len();
        r.bugs = bugs;
        r
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![bug(3, BugStatus::Uncontrolled), bug(7, BugStatus::Unreachable)]);
        assert!(check_conservative(&r, &r).is_ok());
    }

    #[test]
    fn degradation_to_undecided_passes() {
        let base = report(vec![bug(3, BugStatus::Uncontrolled), bug(7, BugStatus::Controlled)]);
        let faulty = report(vec![bug(3, BugStatus::Undecided), bug(7, BugStatus::Undecided)]);
        assert!(check_conservative(&base, &faulty).is_ok());
    }

    #[test]
    fn inference_abort_leaving_reachable_passes() {
        let base = report(vec![bug(3, BugStatus::Uncontrolled)]);
        let faulty = report(vec![bug(3, BugStatus::Reachable)]);
        assert!(check_conservative(&base, &faulty).is_ok());
    }

    #[test]
    fn unreachable_flip_is_rejected() {
        let base = report(vec![bug(3, BugStatus::Reachable)]);
        let faulty = report(vec![bug(3, BugStatus::Unreachable)]);
        let err = check_conservative(&base, &faulty).unwrap_err();
        assert!(err.contains("flipped"), "unexpected message: {err}");
    }

    #[test]
    fn controlled_descending_to_unreachable_is_rejected() {
        let base = report(vec![bug(3, BugStatus::Controlled)]);
        let faulty = report(vec![bug(3, BugStatus::Unreachable)]);
        assert!(check_conservative(&base, &faulty).is_err());
    }

    #[test]
    fn missing_bug_is_rejected() {
        let base = report(vec![bug(3, BugStatus::Uncontrolled)]);
        let faulty = report(vec![]);
        let err = check_conservative(&base, &faulty).unwrap_err();
        assert!(err.contains("missing"), "unexpected message: {err}");
    }

    #[test]
    fn whole_run_failure_is_accepted() {
        let base = report(vec![bug(3, BugStatus::Uncontrolled)]);
        let mut faulty = report(vec![]);
        faulty.degraded.push(StageFailure {
            stage: "pipeline".into(),
            error: "injected panic".into(),
            queries_used: 0,
            duration: Duration::ZERO,
        });
        assert!(check_conservative(&base, &faulty).is_ok());
    }
}
