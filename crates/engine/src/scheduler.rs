//! The ready-queue DAG scheduler behind the parallel engine.
//!
//! Jobs form a dependency DAG built dynamically: any job may spawn
//! further jobs (with dependencies on existing jobs) while it runs. Each
//! worker owns a deque; a worker pops from the back of its own deque
//! (LIFO — freshly spawned work stays hot) and steals from the front of
//! other workers' deques (FIFO — steals take the oldest, largest-grained
//! work). All queues live behind one mutex paired with a condvar: jobs in
//! this system are solver queries and pipeline stages, milliseconds and
//! up, so queue contention is noise while the single-lock design rules
//! out lost-wakeup bugs by construction.
//!
//! Every worker owns a [`GovernedSolver`] built once from the run's
//! [`SolverConfig`]; jobs reach it (and the shared [`QueryCache`]) through
//! [`WorkerCtx`]. A panic that escapes a job is absorbed: the job is
//! marked complete (dependents still run — they must tolerate missing
//! producer output), the worker's solver is rebuilt in case the panic
//! left a half-mutated assertion stack, and a counter records the event.

use crate::cache::QueryCache;
use crate::stats::Histogram;
use bf4_smt::{new_solver, GovernedSolver, SolverConfig};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Identifier of a spawned job, usable as a dependency.
pub type JobId = usize;

type Task = Box<dyn FnOnce(&mut WorkerCtx) + Send + 'static>;

struct Node {
    task: Option<Task>,
    deps_left: usize,
    dependents: Vec<JobId>,
    done: bool,
    /// When the job became ready (landed on a deque); drives the
    /// `engine.queue_wait` latency metric.
    enqueued: Option<Instant>,
}

struct State {
    nodes: Vec<Node>,
    queues: Vec<VecDeque<JobId>>,
    /// Jobs spawned but not yet completed.
    pending: usize,
    /// Round-robin cursor for spawns from outside the pool.
    next_queue: usize,
    steals: u64,
    jobs_run: u64,
    panics: u64,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register a job; `home` is the queue a ready job lands on.
    fn spawn(&self, deps: &[JobId], task: Task, home: Option<usize>) -> JobId {
        let mut st = self.lock();
        let id = st.nodes.len();
        let deps_left = deps.iter().filter(|&&d| !st.nodes[d].done).count();
        for &d in deps {
            if !st.nodes[d].done {
                st.nodes[d].dependents.push(id);
            }
        }
        st.nodes.push(Node {
            task: Some(task),
            deps_left,
            dependents: Vec::new(),
            done: false,
            enqueued: None,
        });
        st.pending += 1;
        if deps_left == 0 {
            let q = match home {
                Some(w) => w,
                None => {
                    let q = st.next_queue;
                    st.next_queue = (st.next_queue + 1) % st.queues.len();
                    q
                }
            };
            st.nodes[id].enqueued = Some(Instant::now());
            st.queues[q].push_back(id);
        }
        drop(st);
        self.cv.notify_all();
        id
    }
}

/// What one run of the pool observed.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Jobs executed.
    pub jobs_run: u64,
    /// Jobs taken from another worker's deque.
    pub steals: u64,
    /// Panics absorbed by the scheduler backstop or the pipeline guard.
    pub panics: u64,
    /// Per-stage latency histograms merged across workers.
    pub stages: BTreeMap<String, Histogram>,
}

/// Per-worker context handed to every job.
pub struct WorkerCtx {
    /// This worker's index in the pool.
    pub worker: usize,
    /// The worker-owned governed solver. Long-lived: jobs use it directly
    /// or wrap it in a [`crate::CachedSolver`] for the duration of a job.
    /// Queries must leave its assertion stack balanced.
    pub solver: GovernedSolver,
    /// Config the solver was built from (used to rebuild after panics).
    pub solver_cfg: SolverConfig,
    /// The run-wide query cache.
    pub cache: Arc<QueryCache>,
    shared: Arc<Shared>,
    stages: BTreeMap<String, Histogram>,
    /// Whether the job currently executing on this worker was stolen from
    /// another worker's deque.
    current_stolen: bool,
}

impl WorkerCtx {
    /// Spawn a job that runs once every job in `deps` has completed.
    /// Ready jobs land on this worker's own deque.
    pub fn spawn(
        &self,
        deps: &[JobId],
        job: impl FnOnce(&mut WorkerCtx) + Send + 'static,
    ) -> JobId {
        self.shared.spawn(deps, Box::new(job), Some(self.worker))
    }

    /// Record a latency sample under a stage name.
    pub fn record(&mut self, stage: &str, started: Instant) {
        self.stages
            .entry(stage.to_string())
            .or_default()
            .record(started.elapsed());
    }

    /// Replace the worker solver with a fresh one (after a panic may have
    /// left the old one with an unbalanced assertion stack).
    pub fn reset_solver(&mut self) {
        self.solver = new_solver(&self.solver_cfg);
    }

    /// Record a panic absorbed above the scheduler (e.g. by the pipeline
    /// guard) so it still shows up in [`PoolStats::panics`].
    pub fn record_panic(&self) {
        self.shared.lock().panics += 1;
        bf4_obs::counter_add("engine.panics", 1);
    }

    /// Whether the job currently running on this worker was stolen from
    /// another worker's deque (job spans tag themselves with this).
    pub fn current_job_stolen(&self) -> bool {
        self.current_stolen
    }
}

/// A fixed-size worker pool executing a dynamic job DAG.
pub struct Pool {
    shared: Arc<Shared>,
    workers: usize,
    solver_cfg: SolverConfig,
    cache: Arc<QueryCache>,
}

impl Pool {
    /// A pool with `workers` threads (clamped to at least 1). Workers are
    /// not started until [`Pool::run`].
    pub fn new(workers: usize, solver_cfg: SolverConfig, cache: Arc<QueryCache>) -> Pool {
        let workers = workers.max(1);
        Pool {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    nodes: Vec::new(),
                    queues: (0..workers).map(|_| VecDeque::new()).collect(),
                    pending: 0,
                    next_queue: 0,
                    steals: 0,
                    jobs_run: 0,
                    panics: 0,
                }),
                cv: Condvar::new(),
            }),
            workers,
            solver_cfg,
            cache,
        }
    }

    /// Spawn a job from outside the pool (before or during `run`). Ready
    /// jobs are distributed round-robin over the worker deques.
    pub fn spawn(
        &self,
        deps: &[JobId],
        job: impl FnOnce(&mut WorkerCtx) + Send + 'static,
    ) -> JobId {
        self.shared.spawn(deps, Box::new(job), None)
    }

    /// Run workers until every spawned job (including ones spawned while
    /// running) has completed. Returns merged statistics.
    pub fn run(&self) -> PoolStats {
        let handles: Vec<_> = (0..self.workers)
            .map(|w| {
                let shared = self.shared.clone();
                let cfg = self.solver_cfg.clone();
                let cache = self.cache.clone();
                std::thread::spawn(move || worker_loop(w, shared, cfg, cache))
            })
            .collect();
        let mut stats = PoolStats::default();
        for h in handles {
            let worker_stages = h.join().expect("worker thread never panics");
            for (name, hist) in worker_stages {
                stats.stages.entry(name).or_default().merge(&hist);
            }
        }
        let st = self.shared.lock();
        stats.jobs_run = st.jobs_run;
        stats.steals = st.steals;
        stats.panics = st.panics;
        stats
    }
}

fn worker_loop(
    worker: usize,
    shared: Arc<Shared>,
    solver_cfg: SolverConfig,
    cache: Arc<QueryCache>,
) -> BTreeMap<String, Histogram> {
    let mut ctx = WorkerCtx {
        worker,
        solver: new_solver(&solver_cfg),
        solver_cfg,
        cache,
        shared: shared.clone(),
        stages: BTreeMap::new(),
        current_stolen: false,
    };
    loop {
        // Find a job: own deque from the back, then steal from the front
        // of the others; otherwise sleep unless everything is done.
        let (id, task, stolen, enqueued) = {
            let mut st = shared.lock();
            loop {
                if let Some(id) = st.queues[worker].pop_back() {
                    let enq = st.nodes[id].enqueued.take();
                    break (
                        id,
                        st.nodes[id].task.take().expect("queued job has task"),
                        false,
                        enq,
                    );
                }
                let n = st.queues.len();
                let stolen = (1..n)
                    .map(|k| (worker + k) % n)
                    .find_map(|v| st.queues[v].pop_front());
                if let Some(id) = stolen {
                    st.steals += 1;
                    let enq = st.nodes[id].enqueued.take();
                    break (
                        id,
                        st.nodes[id].task.take().expect("queued job has task"),
                        true,
                        enq,
                    );
                }
                if st.pending == 0 {
                    return ctx.stages;
                }
                st = shared
                    .cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if let Some(t) = enqueued {
            bf4_obs::hist_record("engine.queue_wait", t.elapsed());
        }
        if stolen {
            bf4_obs::counter_add("engine.steals", 1);
        }
        ctx.current_stolen = stolen;

        // Chaos hook: wedge this worker between claiming the job and
        // running it. A wedge perturbs scheduling order and steal
        // patterns, which determinism says must not change any verdict.
        if bf4_obs::fault::fire("engine.queue_wedge") {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        if catch_unwind(AssertUnwindSafe(|| (task)(&mut ctx))).is_err() {
            // Backstop: pipeline jobs catch their own panics; a raw job
            // that panicked may have wedged the worker solver.
            ctx.reset_solver();
            shared.lock().panics += 1;
            bf4_obs::counter_add("engine.panics", 1);
        }
        bf4_obs::counter_add("engine.jobs", 1);

        // Complete the node and release dependents onto our own deque.
        let mut st = shared.lock();
        st.jobs_run += 1;
        st.nodes[id].done = true;
        st.pending -= 1;
        let dependents = std::mem::take(&mut st.nodes[id].dependents);
        for d in dependents {
            st.nodes[d].deps_left -= 1;
            if st.nodes[d].deps_left == 0 {
                st.nodes[d].enqueued = Some(Instant::now());
                st.queues[worker].push_back(d);
            }
        }
        drop(st);
        shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(workers: usize) -> Pool {
        Pool::new(workers, SolverConfig::default(), QueryCache::new(0))
    }

    #[test]
    fn runs_all_jobs_single_worker() {
        let p = pool(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = counter.clone();
            p.spawn(&[], move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let stats = p.run();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(stats.jobs_run, 10);
        assert_eq!(stats.steals, 0, "one worker has nobody to steal from");
    }

    #[test]
    fn more_workers_than_jobs_terminates() {
        let p = pool(8);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        p.spawn(&[], move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let stats = p.run();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        assert_eq!(stats.jobs_run, 1);
    }

    #[test]
    fn dependencies_order_execution() {
        let p = pool(4);
        let log = Arc::new(Mutex::new(Vec::new()));
        let (l1, l2, l3) = (log.clone(), log.clone(), log.clone());
        let a = p.spawn(&[], move |_| l1.lock().unwrap().push("a"));
        let b = p.spawn(&[a], move |_| l2.lock().unwrap().push("b"));
        let _c = p.spawn(&[a, b], move |_| l3.lock().unwrap().push("c"));
        p.run();
        assert_eq!(*log.lock().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn jobs_spawned_from_jobs_run() {
        let p = pool(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        p.spawn(&[], move |ctx| {
            for _ in 0..5 {
                let c2 = c.clone();
                let follow = ctx.spawn(&[], move |_| {
                    c2.fetch_add(1, Ordering::SeqCst);
                });
                let c3 = c.clone();
                ctx.spawn(&[follow], move |_| {
                    c3.fetch_add(10, Ordering::SeqCst);
                });
            }
        });
        p.run();
        assert_eq!(counter.load(Ordering::SeqCst), 55);
    }

    #[test]
    fn panicking_job_does_not_wedge_the_pool() {
        let p = pool(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let bad = p.spawn(&[], |_| panic!("injected"));
        let c = counter.clone();
        // A dependent of the panicking job still runs.
        p.spawn(&[bad], move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let c = counter.clone();
        p.spawn(&[], move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let stats = p.run();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.jobs_run, 3);
    }

    #[test]
    fn worker_solver_survives_a_panicking_job() {
        use bf4_smt::{SatResult, Solver, Sort, Term};
        let p = pool(1);
        let ok = Arc::new(AtomicUsize::new(0));
        p.spawn(&[], |ctx| {
            // Unbalanced push then panic: the backstop must rebuild the
            // solver so the next job sees a clean assertion stack.
            ctx.solver.push();
            ctx.solver.assert(&Term::var("x", Sort::Bool).not());
            panic!("injected mid-query");
        });
        let ok2 = ok.clone();
        p.spawn(&[], move |ctx| {
            ctx.solver.push();
            ctx.solver.assert(&Term::var("x", Sort::Bool));
            if ctx.solver.check() == SatResult::Sat {
                ok2.fetch_add(1, Ordering::SeqCst);
            }
            ctx.solver.pop();
        });
        p.run();
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stealing_happens_under_imbalance() {
        // All jobs land on worker 0's deque (spawned round-robin over 1
        // initial job that fans out); worker 1 must steal to help.
        let p = pool(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let c0 = counter.clone();
        p.spawn(&[], move |ctx| {
            for _ in 0..32 {
                let c = c0.clone();
                ctx.spawn(&[], move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
            }
        });
        let stats = p.run();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
        assert!(
            stats.steals > 0,
            "second worker should have stolen from the fan-out deque"
        );
    }
}
