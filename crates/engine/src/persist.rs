//! Crash-safe persistence for the normalized query cache.
//!
//! The ROADMAP's `bf4d` incremental service re-verifies programs across
//! process lifetimes, so the cache's canonical `key → Sat/Unsat` map must
//! survive restarts *and* crashes without ever poisoning a verdict. The
//! store mirrors the shim journal's durability discipline in a two-file
//! layout under `--cache-dir`:
//!
//! * `snap-<generation>.bf4q` — an immutable **snapshot**: one header
//!   line plus one line per entry, every line individually checksummed
//!   (FNV-1a, the journal's checksum). Snapshots are written to a temp
//!   file, fsynced, then atomically renamed — a crash mid-compaction
//!   leaves the previous generation intact.
//! * `wal.bf4q` — an append-only **log** of entries computed since the
//!   snapshot, same line format. Appends are the cheap steady-state save;
//!   once the log rivals the snapshot in size, a save compacts: new
//!   snapshot, next generation, log deleted.
//!
//! Recovery is per-line: any line whose checksum or syntax fails —
//! torn tail, truncation, bit flip — is dropped and counted in
//! `cache_corrupt_records`, and every other valid line is salvaged. A
//! corrupt cache therefore costs cache misses, never wrong verdicts.
//!
//! Both headers carry [`bf4_smt::schema_fingerprint`]: a cache written
//! under a different canonicalization scheme (where equal keys may mean
//! different formulas) is rejected wholesale as *stale* and rebuilt,
//! instead of matching new queries against old meanings.
//!
//! Fault sites (`cache.load_io`, `cache.load_corrupt`,
//! `cache.persist_io`) let the chaos suite inject I/O failures and
//! in-flight corruption; an injected save failure deliberately leaves a
//! torn file behind so recovery is exercised against real torn state.

use crate::cache::QueryCache;
use bf4_smt::SatResult;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Format version of the store. Bump on any layout change.
const VERSION: u32 = 1;
/// Magic of snapshot headers.
const SNAP_MAGIC: &str = "bf4qc";
/// Magic of log headers.
const LOG_MAGIC: &str = "bf4ql";
/// Name of the append-only log file.
const LOG_NAME: &str = "wal.bf4q";

/// FNV-1a over bytes — the same checksum the shim journal uses. Each
/// input byte multiplies the state by an odd prime, a bijection on u64,
/// so any single-byte change always changes the hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn checksummed(payload: &str) -> String {
    format!("{payload} #{:016x}\n", fnv1a(payload.as_bytes()))
}

/// Split `payload #checksum`, verifying the checksum. `None` = corrupt.
///
/// The checksum field must be *canonical*: exactly 16 lowercase hex
/// chars. A permissive parse (`from_str_radix` accepts uppercase and a
/// sign) would let some single-bit flips — e.g. `b` → `B` — produce a
/// different byte that still verifies, weakening the
/// every-mutation-is-detected guarantee the property test pins down.
fn verify_line(line: &str) -> Option<&str> {
    let (payload, sum) = line.rsplit_once(" #")?;
    if sum.len() != 16 || !sum.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    let sum = u64::from_str_radix(sum, 16).ok()?;
    (sum == fnv1a(payload.as_bytes())).then_some(payload)
}

fn encode_entry(key: u128, result: SatResult) -> String {
    let v = match result {
        SatResult::Sat => 'S',
        SatResult::Unsat => 'U',
        SatResult::Unknown => unreachable!("Unknown is never persisted"),
    };
    checksummed(&format!("{key:032x} {v}"))
}

fn decode_entry(payload: &str) -> Option<(u128, SatResult)> {
    let (key, verdict) = payload.split_once(' ')?;
    if key.len() != 32 {
        return None;
    }
    let key = u128::from_str_radix(key, 16).ok()?;
    let result = match verdict {
        "S" => SatResult::Sat,
        "U" => SatResult::Unsat,
        _ => return None,
    };
    Some((key, result))
}

/// Parsed header of a snapshot or log file.
struct Header {
    fingerprint: u64,
    generation: u64,
}

fn encode_header(magic: &str, fingerprint: u64, generation: u64) -> String {
    checksummed(&format!("{magic} {VERSION} {fingerprint:016x} {generation}"))
}

fn decode_header(line: &str, magic: &str) -> Option<Header> {
    let payload = verify_line(line)?;
    let mut parts = payload.split(' ');
    if parts.next()? != magic {
        return None;
    }
    if parts.next()?.parse::<u32>().ok()? != VERSION {
        return None;
    }
    let fingerprint = u64::from_str_radix(parts.next()?, 16).ok()?;
    let generation = parts.next()?.parse().ok()?;
    parts.next().is_none().then_some(Header {
        fingerprint,
        generation,
    })
}

/// What a [`Store::open`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Valid entries salvaged (snapshot + log) and offered to the cache.
    pub loaded: u64,
    /// Lines dropped for failing a checksum or the record syntax —
    /// torn tails, truncations and bit flips all land here.
    pub corrupt_records: u64,
    /// Files rejected wholesale: unreadable header, wrong schema
    /// fingerprint, or a log from a different generation.
    pub stale_files: u64,
    /// Generation of the snapshot in use (0 = none yet).
    pub generation: u64,
}

/// What a [`Store::save`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SaveReport {
    /// Generation after the save.
    pub generation: u64,
    /// Entries appended to the log (0 when the save compacted).
    pub appended: u64,
    /// Whether the save rewrote a full snapshot.
    pub compacted: bool,
}

/// Handle on a cache directory: tracks the live generation and decides
/// append-vs-compact on save.
pub struct Store {
    dir: PathBuf,
    fingerprint: u64,
    generation: u64,
    /// Entries in the live snapshot (compaction sizing).
    snapshot_records: u64,
    /// Entries already appended to the log (compaction sizing).
    log_records: u64,
    /// A rejected snapshot/log was seen on open; the next save compacts
    /// so the stale bytes are reclaimed.
    saw_stale: bool,
    /// Keys already durable on disk; saves append only what is new.
    persisted: std::collections::HashSet<u128>,
}

fn injected_io(site: &'static str) -> io::Error {
    io::Error::other(format!("injected fault: {site}"))
}

impl Store {
    /// Open (creating if needed) the store in `dir` and warm-start
    /// `cache` with every valid entry found. Corrupt lines are counted
    /// into the cache's `corrupt_records` stat and the report; stale
    /// files are skipped wholesale and replaced on the next save.
    pub fn open(dir: &Path, cache: &QueryCache) -> io::Result<(Store, LoadReport)> {
        let mut sp = bf4_obs::span("cache", "persist_load");
        fs::create_dir_all(dir)?;
        let fingerprint = bf4_smt::schema_fingerprint();
        let mut store = Store {
            dir: dir.to_path_buf(),
            fingerprint,
            generation: 0,
            snapshot_records: 0,
            log_records: 0,
            saw_stale: false,
            persisted: Default::default(),
        };
        let mut report = LoadReport::default();

        // Newest snapshot with a valid, fingerprint-matching header wins.
        let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some(gen) = name
                .strip_prefix("snap-")
                .and_then(|r| r.strip_suffix(".bf4q"))
                .and_then(|g| g.parse::<u64>().ok())
            {
                snaps.push((gen, path));
            }
        }
        snaps.sort_unstable_by_key(|&(gen, _)| std::cmp::Reverse(gen));
        for (gen, path) in &snaps {
            match store.load_file(path, SNAP_MAGIC, cache, &mut report)? {
                Some(header) if header.generation == *gen => {
                    store.generation = *gen;
                    store.snapshot_records = report.loaded;
                    break;
                }
                _ => {
                    report.stale_files += 1;
                    store.saw_stale = true;
                }
            }
        }
        report.generation = store.generation;

        // The log is only valid against the snapshot it was logging for.
        let log = dir.join(LOG_NAME);
        if log.exists() {
            let before = report.loaded;
            match store.load_file(&log, LOG_MAGIC, cache, &mut report)? {
                Some(header) if header.generation == store.generation => {
                    store.log_records = report.loaded - before;
                }
                _ => {
                    report.stale_files += 1;
                    store.saw_stale = true;
                }
            }
        }

        cache.note_corrupt(report.corrupt_records);
        if sp.is_active() {
            sp.add_tag("loaded", report.loaded.to_string());
            sp.add_tag("corrupt", report.corrupt_records.to_string());
            sp.add_tag("generation", report.generation.to_string());
        }
        if report.corrupt_records > 0 || report.stale_files > 0 {
            bf4_obs::warn(
                "cache",
                &format!(
                    "cache store salvage: {} loaded, {} corrupt record(s) dropped, \
                     {} stale file(s) skipped",
                    report.loaded, report.corrupt_records, report.stale_files
                ),
            );
        }
        Ok((store, report))
    }

    /// Read one store file, preloading valid entries; returns the header
    /// if it validated (entries are only read under a valid header).
    fn load_file(
        &mut self,
        path: &Path,
        magic: &str,
        cache: &QueryCache,
        report: &mut LoadReport,
    ) -> io::Result<Option<Header>> {
        if bf4_obs::fault::fire("cache.load_io") {
            return Err(injected_io("cache.load_io"));
        }
        let mut content = fs::read(path)?;
        if bf4_obs::fault::fire("cache.load_corrupt") && !content.is_empty() {
            // Flip one bit mid-file: the affected line must be dropped and
            // counted, everything else salvaged.
            let at = content.len() / 2;
            content[at] ^= 0x40;
        }
        let content = String::from_utf8_lossy(&content);
        let mut lines = content.split('\n').filter(|l| !l.is_empty());
        let Some(header) = lines.next().and_then(|l| decode_header(l, magic)) else {
            return Ok(None);
        };
        if header.fingerprint != self.fingerprint {
            return Ok(None);
        }
        for line in lines {
            match verify_line(line).and_then(decode_entry) {
                Some((key, result)) => {
                    cache.preload(key, result);
                    self.persisted.insert(key);
                    report.loaded += 1;
                }
                None => report.corrupt_records += 1,
            }
        }
        Ok(Some(header))
    }

    /// Persist the session's new entries: append to the log in the steady
    /// state, or compact into a next-generation snapshot when the log
    /// rivals the snapshot (or anything stale/torn needs reclaiming).
    ///
    /// An injected `cache.persist_io` fault fails the save midway,
    /// leaving a genuinely torn file for recovery to salvage.
    pub fn save(&mut self, cache: &QueryCache) -> io::Result<SaveReport> {
        let mut sp = bf4_obs::span("cache", "persist_save");
        let fresh: Vec<(u128, SatResult)> = cache
            .session_entries()
            .into_iter()
            .filter(|(k, _)| !self.persisted.contains(k))
            .collect();
        let compact = self.generation == 0
            || self.saw_stale
            || self.log_records + fresh.len() as u64 >= self.snapshot_records.max(64);
        let report = if compact {
            self.compact(cache)?
        } else {
            self.append(&fresh)?
        };
        for (k, _) in &fresh {
            self.persisted.insert(*k);
        }
        if sp.is_active() {
            sp.add_tag("appended", report.appended.to_string());
            sp.add_tag("compacted", report.compacted.to_string());
            sp.add_tag("generation", report.generation.to_string());
        }
        Ok(report)
    }

    /// Append `fresh` entries to the log, creating it (with a header for
    /// the live generation) if absent.
    fn append(&mut self, fresh: &[(u128, SatResult)]) -> io::Result<SaveReport> {
        if fresh.is_empty() {
            return Ok(SaveReport {
                generation: self.generation,
                ..SaveReport::default()
            });
        }
        let path = self.dir.join(LOG_NAME);
        let mut buf = String::new();
        if !path.exists() {
            buf.push_str(&encode_header(LOG_MAGIC, self.fingerprint, self.generation));
        }
        for &(key, result) in fresh {
            buf.push_str(&encode_entry(key, result));
        }
        let mut f = fs::OpenOptions::new().create(true).append(true).open(&path)?;
        if bf4_obs::fault::fire("cache.persist_io") {
            // Torn write: half the batch lands on disk, then the error.
            let half = &buf.as_bytes()[..buf.len() / 2];
            let _ = f.write_all(half);
            let _ = f.sync_all();
            return Err(injected_io("cache.persist_io"));
        }
        f.write_all(buf.as_bytes())?;
        f.sync_all()?;
        self.log_records += fresh.len() as u64;
        Ok(SaveReport {
            generation: self.generation,
            appended: fresh.len() as u64,
            compacted: false,
        })
    }

    /// Write every resident entry into a next-generation snapshot (temp
    /// file + fsync + atomic rename), then drop the log and any old or
    /// stale snapshots.
    fn compact(&mut self, cache: &QueryCache) -> io::Result<SaveReport> {
        let next = self.generation + 1;
        let entries = cache.all_entries();
        let mut buf = encode_header(SNAP_MAGIC, self.fingerprint, next);
        for &(key, result) in &entries {
            buf.push_str(&encode_entry(key, result));
        }
        let tmp = self.dir.join(format!("snap-{next}.bf4q.tmp"));
        let dst = self.dir.join(format!("snap-{next}.bf4q"));
        {
            let mut f = fs::File::create(&tmp)?;
            if bf4_obs::fault::fire("cache.persist_io") {
                let half = &buf.as_bytes()[..buf.len() / 2];
                let _ = f.write_all(half);
                let _ = f.sync_all();
                return Err(injected_io("cache.persist_io"));
            }
            f.write_all(buf.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &dst)?;

        // The new snapshot is durable; stale bytes can go. Removal
        // failures are non-fatal — they only waste disk.
        let _ = fs::remove_file(self.dir.join(LOG_NAME));
        if let Ok(dir) = fs::read_dir(&self.dir) {
            for entry in dir.flatten() {
                let path = entry.path();
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                let is_old_snap = name
                    .strip_prefix("snap-")
                    .and_then(|r| r.strip_suffix(".bf4q"))
                    .and_then(|g| g.parse::<u64>().ok())
                    .is_some_and(|gen| gen != next);
                if is_old_snap || name.ends_with(".bf4q.tmp") {
                    let _ = fs::remove_file(&path);
                }
            }
        }
        self.generation = next;
        self.snapshot_records = entries.len() as u64;
        self.log_records = 0;
        self.saw_stale = false;
        for (k, _) in &entries {
            self.persisted.insert(*k);
        }
        Ok(SaveReport {
            generation: next,
            appended: 0,
            compacted: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique scratch directory per test invocation, no clock involved.
    fn scratch(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bf4-persist-{}-{tag}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn filled_cache(n: u128) -> std::sync::Arc<QueryCache> {
        let cache = QueryCache::new(4096);
        for k in 0..n {
            let verdict = if k % 2 == 0 { SatResult::Sat } else { SatResult::Unsat };
            cache.insert(k.wrapping_mul(0x1234_5678_9abc) + 1, verdict);
        }
        cache
    }

    #[test]
    fn roundtrip_restores_every_entry() {
        let dir = scratch("roundtrip");
        let cache = filled_cache(100);
        let (mut store, load) = Store::open(&dir, &cache).unwrap();
        assert_eq!(load, LoadReport::default());
        let saved = store.save(&cache).unwrap();
        assert!(saved.compacted, "first save must write a snapshot");

        let warm = QueryCache::new(4096);
        let (_, load) = Store::open(&dir, &warm).unwrap();
        assert_eq!(load.loaded, 100);
        assert_eq!(load.corrupt_records, 0);
        assert_eq!(load.generation, 1);
        assert_eq!(warm.all_entries(), cache.all_entries());
        assert_eq!(warm.stats().preloaded, 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn steady_state_saves_append_then_compact() {
        let dir = scratch("append");
        let cache = filled_cache(100);
        let (mut store, _) = Store::open(&dir, &cache).unwrap();
        store.save(&cache).unwrap();

        // A second session: warm-start, add a few entries, save → append.
        let warm = QueryCache::new(4096);
        let (mut store, _) = Store::open(&dir, &warm).unwrap();
        warm.insert(0xdead_0001, SatResult::Sat);
        warm.insert(0xdead_0002, SatResult::Unsat);
        let saved = store.save(&warm).unwrap();
        assert!(!saved.compacted);
        assert_eq!(saved.appended, 2);
        assert!(dir.join(LOG_NAME).exists());
        // Saving again with nothing new appends nothing.
        assert_eq!(store.save(&warm).unwrap().appended, 0);

        let warm2 = QueryCache::new(4096);
        let (_, load) = Store::open(&dir, &warm2).unwrap();
        assert_eq!(load.loaded, 102);
        assert_eq!(warm2.get(0xdead_0001), Some(SatResult::Sat));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_salvages_the_valid_prefix() {
        let dir = scratch("truncate");
        let cache = filled_cache(50);
        let (mut store, _) = Store::open(&dir, &cache).unwrap();
        store.save(&cache).unwrap();
        let snap = dir.join("snap-1.bf4q");
        let bytes = fs::read(&snap).unwrap();
        // Cut mid-record: the torn tail must be dropped, the prefix kept.
        fs::write(&snap, &bytes[..bytes.len() - 20]).unwrap();

        let warm = QueryCache::new(4096);
        let (_, load) = Store::open(&dir, &warm).unwrap();
        assert_eq!(load.loaded, 49);
        assert_eq!(load.corrupt_records, 1);
        assert_eq!(warm.stats().corrupt_records, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_rejects_the_file_wholesale() {
        let dir = scratch("fingerprint");
        fs::create_dir_all(&dir).unwrap();
        // A snapshot written under a different canonicalization scheme:
        // same format, different fingerprint, internally consistent.
        let fake_fp = bf4_smt::schema_fingerprint() ^ 1;
        let mut buf = encode_header(SNAP_MAGIC, fake_fp, 1);
        buf.push_str(&encode_entry(42, SatResult::Sat));
        fs::write(dir.join("snap-1.bf4q"), &buf).unwrap();

        let cache = QueryCache::new(4096);
        let (mut store, load) = Store::open(&dir, &cache).unwrap();
        assert_eq!(load.loaded, 0, "stale entries must not be offered");
        assert_eq!(load.stale_files, 1);
        assert_eq!(cache.get(42), None);
        // The next save reclaims the stale file with a fresh snapshot.
        cache.insert(7, SatResult::Unsat);
        let saved = store.save(&cache).unwrap();
        assert!(saved.compacted);
        let warm = QueryCache::new(4096);
        let (_, load) = Store::open(&dir, &warm).unwrap();
        assert_eq!((load.loaded, load.stale_files), (1, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_mid_compaction_keeps_the_previous_generation() {
        let dir = scratch("midcompact");
        let cache = filled_cache(30);
        let (mut store, _) = Store::open(&dir, &cache).unwrap();
        store.save(&cache).unwrap();
        // Simulate a crash between temp-file write and rename: a torn
        // temp file next to the good generation-1 snapshot.
        fs::write(dir.join("snap-2.bf4q.tmp"), b"bf4qc 1 torn").unwrap();

        let warm = QueryCache::new(4096);
        let (_, load) = Store::open(&dir, &warm).unwrap();
        assert_eq!(load.generation, 1);
        assert_eq!(load.loaded, 30);
        assert_eq!(load.corrupt_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_never_reaches_disk() {
        let dir = scratch("unknown");
        let cache = QueryCache::new(64);
        cache.insert(1, SatResult::Sat);
        cache.insert(2, SatResult::Unknown);
        let (mut store, _) = Store::open(&dir, &cache).unwrap();
        store.save(&cache).unwrap();
        let warm = QueryCache::new(64);
        let (_, load) = Store::open(&dir, &warm).unwrap();
        assert_eq!(load.loaded, 1);
        assert_eq!(warm.get(2), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
