//! The normalized SMT query cache and the [`Solver`] wrapper that consults
//! it.
//!
//! Queries are keyed by [`bf4_smt::query_key`] — a canonical 128-bit hash
//! invariant under assertion order, commutative operand order and (best
//! effort) variable renaming — so structurally equal queries from
//! different bugs, rounds or *programs* share one entry. Only definite
//! `Sat`/`Unsat` answers are cached: an `Unknown` is a budget artifact of
//! one particular run and must never be replayed.

use crate::stats::CacheStats;
use bf4_smt::{query_key, Assignment, ResourceBudget, SatResult, Solver, SolverError, Sort, Term};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

struct Entry {
    result: SatResult,
    last_used: u64,
    /// Inserted by this session (as opposed to warm-started from a
    /// persistent store). Only fresh entries need appending to the WAL.
    fresh: bool,
}

/// Concurrent result cache for satisfiability checks, shared by every
/// worker of an engine run. Bounded: beyond `cap` entries the least
/// recently used entry is evicted. Capacity 0 disables the cache.
pub struct QueryCache {
    cap: usize,
    map: Mutex<HashMap<u128, Entry>>,
    tick: AtomicU64,
    hits: AtomicU64,
    warm_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    preloaded: AtomicU64,
    corrupt: AtomicU64,
}

impl QueryCache {
    /// A cache holding at most `cap` entries (0 disables caching).
    pub fn new(cap: usize) -> Arc<QueryCache> {
        Arc::new(QueryCache {
            cap,
            map: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            preloaded: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        })
    }

    /// Capacity this cache was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Look up a canonical key; counts a hit or miss.
    pub fn get(&self, key: u128) -> Option<SatResult> {
        self.lookup(key).map(|(r, _)| r)
    }

    /// Like [`QueryCache::get`], additionally reporting whether the hit
    /// was *warm* — answered by an entry warm-started from a persistent
    /// store rather than computed this session. Both count as hits (the
    /// one definition every reporting surface uses); warm ones are also
    /// tallied in `warm_hits`.
    pub fn lookup(&self, key: u128) -> Option<(SatResult, bool)> {
        if self.cap == 0 {
            return None;
        }
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        match map.get_mut(&key) {
            Some(e) => {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                bf4_obs::counter_add("cache.hits", 1);
                let warm = !e.fresh;
                if warm {
                    self.warm_hits.fetch_add(1, Ordering::Relaxed);
                    bf4_obs::counter_add("cache.warm_hits", 1);
                }
                Some((e.result, warm))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                bf4_obs::counter_add("cache.misses", 1);
                None
            }
        }
    }

    /// Store a definite answer. `Unknown` is silently dropped.
    pub fn insert(&self, key: u128, result: SatResult) {
        if self.cap == 0 || result == SatResult::Unknown {
            return;
        }
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        if !map.contains_key(&key) && map.len() >= self.cap {
            // Evict the least recently used entry. Linear scan: the cache
            // is bounded and eviction only happens at capacity.
            if let Some(&victim) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                bf4_obs::counter_add("cache.evictions", 1);
            }
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if map
            .insert(
                key,
                Entry {
                    result,
                    last_used: tick,
                    fresh: true,
                },
            )
            .is_none()
        {
            self.insertions.fetch_add(1, Ordering::Relaxed);
            bf4_obs::counter_add("cache.insertions", 1);
        }
    }

    /// Warm-start an entry from a persistent store. Counted separately
    /// from session insertions, never overwrites a session entry, and
    /// stops silently at capacity (the store may hold more than `cap`).
    /// `Unknown` is refused like in [`QueryCache::insert`].
    pub fn preload(&self, key: u128, result: SatResult) {
        if self.cap == 0 || result == SatResult::Unknown {
            return;
        }
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        if map.contains_key(&key) || map.len() >= self.cap {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        map.insert(
            key,
            Entry {
                result,
                last_used: tick,
                fresh: false,
            },
        );
        self.preloaded.fetch_add(1, Ordering::Relaxed);
        bf4_obs::counter_add("cache.preloaded", 1);
    }

    /// Record persisted records dropped as corrupt during a load, so the
    /// poisoning defense is visible in stats and metrics.
    pub fn note_corrupt(&self, n: u64) {
        if n > 0 {
            self.corrupt.fetch_add(n, Ordering::Relaxed);
            bf4_obs::counter_add("cache_corrupt_records", n);
        }
    }

    /// Entries this session computed itself (not warm-started) — the set
    /// a persistent store appends to its log on save.
    pub fn session_entries(&self) -> Vec<(u128, SatResult)> {
        let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<(u128, SatResult)> = map
            .iter()
            .filter(|(_, e)| e.fresh)
            .map(|(&k, e)| (k, e.result))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Every resident entry, for snapshot compaction. Sorted by key so
    /// snapshots are deterministic.
    pub fn all_entries(&self) -> Vec<(u128, SatResult)> {
        let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<(u128, SatResult)> =
            map.iter().map(|(&k, e)| (k, e.result)).collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .map
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            preloaded: self.preloaded.load(Ordering::Relaxed),
            corrupt_records: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

fn verdict_label(r: SatResult) -> &'static str {
    match r {
        SatResult::Sat => "sat",
        SatResult::Unsat => "unsat",
        SatResult::Unknown => "unknown",
    }
}

enum Inner<'a> {
    Owned(Box<dyn Solver>),
    Borrowed(&'a mut dyn Solver),
}

/// A [`Solver`] that mirrors the assertion stack and answers `check` from
/// the shared [`QueryCache`] when the canonical key of the current stack
/// has a stored verdict.
///
/// Soundness rules:
///
/// * only `check` consults the cache; `check_assumptions` always runs the
///   inner solver (its follow-up `unsat_core` needs real solver state);
/// * only `Sat`/`Unsat` are stored;
/// * `model` after a cache-answered `check` first re-runs the inner check
///   so the model comes from real solver state, never from a stale one.
pub struct CachedSolver<'a> {
    inner: Inner<'a>,
    cache: Arc<QueryCache>,
    /// Mirrored assertion stack; index 0 is the permanent frame.
    frames: Vec<Vec<Term>>,
    /// The last `check` was answered from the cache, so the inner solver
    /// never ran it.
    answered_from_cache: bool,
}

impl<'a> CachedSolver<'a> {
    /// Wrap an owned solver (used for the inference/finish stages).
    pub fn owned(inner: Box<dyn Solver>, cache: Arc<QueryCache>) -> CachedSolver<'static> {
        CachedSolver {
            inner: Inner::Owned(inner),
            cache,
            frames: vec![Vec::new()],
            answered_from_cache: false,
        }
    }

    /// Wrap a worker's long-lived solver for the duration of one job.
    pub fn borrowed(inner: &'a mut dyn Solver, cache: Arc<QueryCache>) -> CachedSolver<'a> {
        CachedSolver {
            inner: Inner::Borrowed(inner),
            cache,
            frames: vec![Vec::new()],
            answered_from_cache: false,
        }
    }

    fn inner(&mut self) -> &mut dyn Solver {
        match &mut self.inner {
            Inner::Owned(s) => s.as_mut(),
            Inner::Borrowed(s) => *s,
        }
    }

    fn stack_key(&self) -> u128 {
        let terms: Vec<Term> = self.frames.iter().flatten().cloned().collect();
        query_key(&terms)
    }
}

impl Solver for CachedSolver<'_> {
    fn assert(&mut self, t: &Term) {
        self.answered_from_cache = false;
        self.frames
            .last_mut()
            .expect("permanent frame always present")
            .push(t.clone());
        self.inner().assert(t);
    }

    fn push(&mut self) {
        self.frames.push(Vec::new());
        self.inner().push();
    }

    fn pop(&mut self) {
        self.answered_from_cache = false;
        // Unified pop-underflow contract (see `Solver::pop`): on underflow
        // neither the key mirror nor the inner solver pops.
        debug_assert!(self.frames.len() > 1, "pop on base assertion frame");
        if self.frames.len() > 1 {
            self.frames.pop();
            self.inner().pop();
        }
    }

    fn check(&mut self) -> SatResult {
        // The one span that sees both the cache outcome and the verdict;
        // on a miss the governed solver's own `smt/check` span nests
        // underneath with backend/retry detail.
        let mut sp = bf4_obs::span("smt", "query");
        let key = self.stack_key();
        if let Some((r, warm)) = self.cache.lookup(key) {
            self.answered_from_cache = true;
            if sp.is_active() {
                sp.add_tag("cache", "hit");
                if warm {
                    sp.add_tag("warm", "true");
                }
                sp.add_tag("verdict", verdict_label(r));
            }
            return r;
        }
        if sp.is_active() {
            sp.add_tag("cache", if self.cache.capacity() == 0 { "off" } else { "miss" });
        }
        let r = self.inner().check();
        self.answered_from_cache = false;
        self.cache.insert(key, r);
        sp.add_tag("verdict", verdict_label(r));
        r
    }

    fn check_assumptions(&mut self, assumptions: &[Term]) -> SatResult {
        self.answered_from_cache = false;
        self.inner().check_assumptions(assumptions)
    }

    fn unsat_core(&mut self) -> Vec<usize> {
        self.inner().unsat_core()
    }

    fn model(&mut self, vars: &[(Arc<str>, Sort)]) -> Result<Assignment, SolverError> {
        if self.answered_from_cache {
            // The cached verdict skipped the real check; the inner solver
            // holds the same assertions, so re-run it to get real state.
            let _ = self.inner().check();
            self.answered_from_cache = false;
        }
        self.inner().model(vars)
    }

    fn set_budget(&mut self, budget: ResourceBudget) {
        self.inner().set_budget(budget);
    }

    fn last_error(&self) -> Option<&SolverError> {
        match &self.inner {
            Inner::Owned(s) => s.last_error(),
            Inner::Borrowed(s) => s.last_error(),
        }
    }

    fn queries_used(&self) -> u64 {
        match &self.inner {
            Inner::Owned(s) => s.queries_used(),
            Inner::Borrowed(s) => s.queries_used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf4_smt::bitblast::BitBlastSolver;

    fn v(name: &str) -> Term {
        Term::var(name, Sort::Bool)
    }

    fn cached(cache: &Arc<QueryCache>) -> CachedSolver<'static> {
        CachedSolver::owned(Box::new(BitBlastSolver::new()), cache.clone())
    }

    #[test]
    fn second_identical_query_hits() {
        let cache = QueryCache::new(16);
        for _ in 0..2 {
            let mut s = cached(&cache);
            s.push();
            s.assert(&v("p").and(&v("q")));
            assert_eq!(s.check(), SatResult::Sat);
            s.pop();
        }
        let st = cache.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.insertions, 1);
    }

    #[test]
    fn alpha_renamed_query_hits_across_solvers() {
        // A non-commutative term keeps the canonical operand order (and
        // with it the alpha numbering) independent of the variable
        // names; commutative nodes sort operands by their named hash,
        // so renaming invariance is only best-effort there.
        let cache = QueryCache::new(16);
        let bv = |n: &str| Term::var(n, Sort::Bv(8));
        let mut s1 = cached(&cache);
        s1.assert(&bv("a").bvult(&bv("b")));
        assert_eq!(s1.check(), SatResult::Sat);
        let mut s2 = cached(&cache);
        s2.assert(&bv("x").bvult(&bv("y")));
        assert_eq!(s2.check(), SatResult::Sat);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn warm_hits_count_preloaded_answers_until_recomputed() {
        let cache = QueryCache::new(16);
        cache.preload(42, SatResult::Unsat);
        assert_eq!(cache.lookup(42), Some((SatResult::Unsat, true)));
        // A session insert over the same key makes later hits session-warm
        // no longer: the entry was recomputed this session.
        cache.insert(42, SatResult::Unsat);
        assert_eq!(cache.lookup(42), Some((SatResult::Unsat, false)));
        let st = cache.stats();
        assert_eq!(st.hits, 2);
        assert_eq!(st.warm_hits, 1);
    }

    #[test]
    fn unknown_is_never_cached() {
        let cache = QueryCache::new(16);
        cache.insert(42, SatResult::Unknown);
        assert_eq!(cache.get(42), None);
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn model_after_cached_answer_comes_from_real_state() {
        let cache = QueryCache::new(16);
        let p = v("p");
        let mut s1 = cached(&cache);
        s1.assert(&p);
        assert_eq!(s1.check(), SatResult::Sat);
        let mut s2 = cached(&cache);
        s2.assert(&p);
        assert_eq!(s2.check(), SatResult::Sat); // cache hit
        let m = s2.model(&[(Arc::from("p"), Sort::Bool)]).unwrap();
        assert_eq!(m.get("p"), Some(&bf4_smt::Value::Bool(true)));
    }

    #[test]
    fn eviction_under_tiny_capacity() {
        let cache = QueryCache::new(2);
        let names = ["n0", "n1", "n2", "n3"];
        for (i, n) in names.iter().enumerate() {
            // Distinct shapes: i+1-way conjunction of one fresh variable
            // with itself is collapsed, so use chains of distinct vars.
            let t = (0..=i)
                .map(|k| v(&format!("{n}_{k}")))
                .reduce(|a, b| a.and(&b))
                .unwrap();
            let mut s = cached(&cache);
            s.assert(&t);
            s.check();
        }
        let st = cache.stats();
        assert_eq!(st.insertions, 4);
        assert_eq!(st.evictions, 2);
        assert_eq!(st.entries, 2);
    }

    #[test]
    fn capacity_zero_disables() {
        let cache = QueryCache::new(0);
        let mut s = cached(&cache);
        s.assert(&v("p"));
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.check(), SatResult::Sat);
        let st = cache.stats();
        assert_eq!(st.hits + st.misses + st.insertions, 0);
        assert_eq!(st.entries, 0);
    }

    #[test]
    fn push_pop_changes_the_key() {
        let cache = QueryCache::new(16);
        let mut s = cached(&cache);
        s.assert(&v("p"));
        s.push();
        s.assert(&v("p").not());
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        // Different stack, different key: must not replay the Unsat.
        assert_eq!(s.check(), SatResult::Sat);
    }
}
