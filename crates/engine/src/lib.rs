#![warn(missing_docs)]

//! # bf4-engine — parallel verification engine for bf4
//!
//! Verifies whole corpora (or single programs) by decomposing the bf4
//! pipeline into typed jobs on a fixed worker pool:
//!
//! * [`scheduler`] — a ready-queue DAG scheduler with per-worker deques
//!   and work stealing; every worker owns a governed solver;
//! * [`cache`] — a normalized SMT query cache keyed on the canonical
//!   128-bit hash of the assertion stack ([`bf4_smt::query_key`]), shared
//!   across bugs, rounds and programs; only definite `Sat`/`Unsat`
//!   verdicts are stored;
//! * [`pipeline`] — the job decomposition (frontend → per-round prepare →
//!   per-bug reachability → finish) built on the sequential driver's own
//!   building blocks (`prepare_round`/`check_bugs`/`finish_round`), so
//!   parallel and sequential runs produce identical reports (timings
//!   aside);
//! * [`stats`] — scheduler/cache/latency observability ([`EngineStats`]).
//!
//! Determinism: every quantity in a [`Report`] is derived from per-bug
//! solver verdicts, and `Sat`/`Unsat` verdicts are independent of solver
//! assertion history, worker assignment and cache state (`Unknown`, which
//! is budget-dependent, is never cached). Scheduling order therefore
//! cannot change any report field other than wall-clock timings.

pub mod cache;
pub mod chaos;
pub mod persist;
pub mod pipeline;
pub mod scheduler;
pub mod stats;

pub use cache::{CachedSolver, QueryCache};
pub use chaos::check_conservative;
pub use persist::{LoadReport, SaveReport, Store};
pub use scheduler::{JobId, Pool, PoolStats, WorkerCtx};
pub use stats::{CacheStats, EngineStats, Histogram, PersistStats};

use bf4_core::driver::{Report, VerifyOptions};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// How an engine run is sized.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads (`1` = a pool of one worker; the job decomposition
    /// is the same at every width).
    pub jobs: usize,
    /// Query-cache capacity in entries; `0` disables caching.
    pub cache_cap: usize,
    /// Directory of the persistent cache store: warm-start the cache
    /// from it before the run. Requires `cache_cap > 0` to have effect.
    pub cache_dir: Option<PathBuf>,
    /// Save the cache back to `cache_dir` after the run. Persistence
    /// failures degrade to a stats entry, never to a wrong verdict.
    pub cache_persist: bool,
    /// Test hook: panic inside the named `(program, stage)` job, where
    /// stage is one of `frontend`, `prepare`, `reach`, `finish`.
    #[doc(hidden)]
    pub inject_panic: Option<(String, String)>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            jobs: 1,
            cache_cap: 0,
            cache_dir: None,
            cache_persist: false,
            inject_panic: None,
        }
    }
}

/// Verify a corpus of `(name, source)` programs. Reports come back in
/// input order and are identical to what
/// [`bf4_core::driver::verify_isolated`] produces per program, modulo
/// timings.
pub fn verify_corpus(
    programs: &[(String, String)],
    options: &VerifyOptions,
    config: &EngineConfig,
) -> (Vec<Report>, EngineStats) {
    let started = Instant::now();
    // Every configuration runs through the pool — `jobs: 1` is a pool of
    // one worker, not a separate code path. This keeps the job
    // decomposition (and therefore `EngineStats::jobs_run`) invariant
    // across jobs/cache configurations; reports are identical either way
    // by the determinism contract above.

    // Metric updates land in the process-global registry from every
    // worker thread; `pool.run()` joins the workers, so an after-join
    // snapshot has every per-worker update merged and the before/after
    // counter delta attributes exactly the run — same contract as the
    // sequential driver's `Report::obs_metrics`.
    let metrics_before = bf4_obs::metrics_enabled().then(bf4_obs::snapshot);
    let cache = QueryCache::new(config.cache_cap);
    // Warm-start from the persistent store before any job runs. Open
    // failures (including injected ones) degrade to a stats entry and a
    // cold cache — never to a failed run or a wrong verdict.
    let mut store = None;
    let mut persist_stats = None;
    if let Some(dir) = &config.cache_dir {
        match persist::Store::open(dir, &cache) {
            Ok((s, load)) => {
                store = Some(s);
                persist_stats = Some(PersistStats::from_load(&load));
            }
            Err(e) => {
                bf4_obs::error("cache", &format!("cache store open failed: {e}"));
                persist_stats = Some(PersistStats {
                    io_errors: 1,
                    ..PersistStats::default()
                });
            }
        }
    }
    let pool = Pool::new(config.jobs, options.solver.clone(), cache.clone());
    let results: Arc<Mutex<Vec<Option<Report>>>> =
        Arc::new(Mutex::new(vec![None; programs.len()]));
    for (i, (name, source)) in programs.iter().enumerate() {
        pipeline::spawn_program(
            &pool,
            i,
            name.clone(),
            source.clone(),
            options,
            config,
            &results,
        );
    }
    let pool_stats = pool.run();

    if config.cache_persist {
        if let (Some(s), Some(ps)) = (&mut store, &mut persist_stats) {
            match s.save(&cache) {
                Ok(saved) => ps.note_save(&saved),
                Err(e) => {
                    bf4_obs::error("cache", &format!("cache store save failed: {e}"));
                    ps.io_errors += 1;
                }
            }
        }
    }

    let obs_metrics = metrics_before.map(|before| bf4_obs::snapshot().delta_since(&before));
    let mut reports: Vec<Report> = results
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain(..)
        .map(|r| {
            r.unwrap_or_else(|| {
                // Unreachable by construction (every chain completes); a
                // degraded report beats a crash if it ever happens.
                Report::failed("pipeline", "no result produced".into(), started.elapsed())
            })
        })
        .collect();
    // With one program in flight the run-wide delta is that program's
    // delta; multi-program corpora overlap in the pool, so per-report
    // attribution stays `None` there and the roll-up lives in
    // `EngineStats::obs_metrics`.
    if let (1, Some(delta)) = (programs.len(), &obs_metrics) {
        reports[0].obs_metrics = Some(delta.clone());
    }
    let stats = EngineStats {
        workers: config.jobs.max(1),
        jobs_run: pool_stats.jobs_run,
        steals: pool_stats.steals,
        panics: pool_stats.panics,
        cache: cache.stats(),
        persist: persist_stats,
        stages: pool_stats.stages,
        obs_metrics,
        wall: started.elapsed(),
    };
    (reports, stats)
}

/// Render every report field except timings as stable text: bug and
/// degraded lines are sorted, and no wall-clock or query counts appear.
/// Sequential and parallel runs of the same corpus must render
/// byte-identically — `ci.sh` diffs exactly this output.
pub fn normalized_report(name: &str, r: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}: totals {}/{}/{} undecided {} keys {} tables {} egress_fix {}",
        r.bugs_total,
        r.bugs_after_infer,
        r.bugs_after_fixes,
        r.bugs_undecided,
        r.keys_added,
        r.tables_modified,
        r.egress_spec_fix
    );
    let mut bugs: Vec<String> = r
        .bugs
        .iter()
        .map(|b| {
            format!(
                "  bug [{}] line {} {:?} {:?} {}",
                b.kind, b.line, b.table, b.status, b.description
            )
        })
        .collect();
    bugs.sort();
    for line in bugs {
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "  annotations: {}", r.annotations);
    let _ = writeln!(out, "  fixes: {}", r.fix_description);
    let mut degraded: Vec<String> = r
        .degraded
        .iter()
        .map(|d| format!("  degraded [{}] {}", d.stage, d.error))
        .collect();
    degraded.sort();
    for line in degraded {
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Verify a single program through the engine.
pub fn verify_one(
    name: &str,
    source: &str,
    options: &VerifyOptions,
    config: &EngineConfig,
) -> (Report, EngineStats) {
    let (mut reports, stats) =
        verify_corpus(&[(name.to_string(), source.to_string())], options, config);
    (reports.remove(0), stats)
}
