//! `bf4` — command-line front end to the verifier, mirroring the paper's
//! p4c-backend workflow: read one or more P4 programs, run the full
//! pipeline, and write the controller annotations plus the proposed fixes.
//!
//! ```text
//! bf4 <program.p4> [more.p4 ...] [options]
//!   --annotations <file>   write the controller annotations (default: stdout;
//!                          single-program runs only)
//!   --no-fixes             stop after inference (report-only mode)
//!   --no-infer             only find reachable bugs (p4v-like mode)
//!   --egress               also analyze the egress pipeline (in separation)
//!   --dump-cfg <file>      write the instrumented CFG in Graphviz DOT form
//!   --timeout-ms <n>       per-query solver deadline in milliseconds
//!   --solver-mode <m>      oneshot (default), incremental (persistent
//!                          per-solver contexts discharging queries via
//!                          assumption literals) or portfolio (incremental
//!                          primary raced against a fresh-context
//!                          challenger per query)
//!   --solver-fallback <n|off>  max formula size routed to the internal
//!                          fallback solver (`off` disables the fallback)
//!   --jobs <n>             worker threads (default 1: the sequential path)
//!   --cache-cap <n>        SMT query-cache capacity in entries (default 0: off)
//!   --cache-dir <dir>      warm-start the query cache from a durable store in
//!                          <dir> and persist new entries back on exit
//!                          (implies --cache-cap 65536 unless set)
//!   --no-cache-persist     load from --cache-dir but do not write the
//!                          session's new entries back on exit
//!   --cache-persist        accepted for compatibility (persistence is now
//!                          the default whenever --cache-dir is given)
//!   --trace-out <file>     write the run's spans as JSONL (bf4-obs schema)
//!   --profile              print a flame-style span breakdown to stderr
//!   --quiet                suppress the per-bug listing
//! ```
//!
//! With `--jobs 1`, `--cache-cap 0` and a single program (the defaults)
//! verification runs the classic sequential pipeline; any other
//! combination routes through the parallel engine (identical results,
//! plus engine statistics and a cache summary line).
//!
//! Exit code: 0 when every bug is controlled/fixed, 1 when dataplane bugs
//! remain, 2 on usage or frontend errors.
//!
//! ```text
//! bf4 client (--socket <path> | --tcp <addr>) <action>
//!   submit <file.p4> [--program NAME] [--normalized]
//!                          verify (a new version of) a program on the daemon;
//!                          --normalized prints only the normalized report on
//!                          stdout (summary goes to stderr)
//!   status <name>          last verdict of a program, without re-verifying
//!   watch <file.p4> [--program NAME] [--interval-ms N]
//!                          submit, then re-submit whenever the file changes
//!   stats | metrics | ping | shutdown
//! ```
//!
//! Client exit code mirrors the daemon verdict: 0 clean, 1 when bugs
//! remain after fixes, 2 on connection/usage errors.
//!
//! ```text
//! bf4 top (--socket <path> | --tcp <addr>) [--interval-ms N] [--iterations N]
//! ```
//!
//! A live terminal dashboard over a running daemon: polls the `stats`
//! and `metrics` ops and renders request rate, latency quantiles, cache
//! hit rate, incremental skips, degradations and active SLO alerts.
//! `--iterations 0` (the default) runs until interrupted.
//!
//! ```text
//! bf4 controller <file.p4> [--updates N] [--batch-size N] [--shards N]
//!                [--threads N] [--seed N] [--faulty F] [--journal FILE]
//!                [--campaign] [--out FILE] [--dir DIR]
//! ```
//!
//! Controller mode: verify the program, then push a synthetic update
//! workload through the sharded line-rate shim in batches (group-commit
//! journaled when `--journal` is given; `BF4_FAULTS` plans apply). With
//! `--campaign`, run the full staged-load stress campaign instead —
//! warmup → burst → fault-mid-burst → drain plus the crash/reopen,
//! assertion-audit and group-commit-vs-per-update-fsync gates — and
//! optionally write the `BENCH_shim.json` report to `--out`. Exit code:
//! 0 when every gate holds, 1 on a gate violation (or, in plain mode, an
//! audit violation), 2 on usage or frontend errors.

use bf4_core::driver::{verify, Report, VerifyOptions};
use bf4_engine::{verify_corpus, EngineConfig, EngineStats};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("client") {
        std::process::exit(client_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("top") {
        std::process::exit(top_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("controller") {
        std::process::exit(controller_main(&args[1..]));
    }
    let mut paths: Vec<String> = Vec::new();
    let mut annotations_out: Option<String> = None;
    let mut dump_cfg: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut profile = false;
    let mut quiet = false;
    let mut options = VerifyOptions::default();
    let mut engine = EngineConfig::default();
    let mut cache_cap_set = false;
    let mut cache_persist_flag = false;
    let mut no_cache_persist = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--annotations" => {
                i += 1;
                annotations_out = args.get(i).cloned();
            }
            "--dump-cfg" => {
                i += 1;
                dump_cfg = args.get(i).cloned();
            }
            "--trace-out" => {
                i += 1;
                trace_out = args.get(i).cloned();
                if trace_out.is_none() {
                    eprintln!("bf4: --trace-out expects an output path");
                    std::process::exit(2);
                }
            }
            "--profile" => profile = true,
            "--timeout-ms" => {
                i += 1;
                let ms: u64 = match args.get(i).map(|v| v.parse()) {
                    Some(Ok(ms)) => ms,
                    _ => {
                        eprintln!("bf4: --timeout-ms expects a number of milliseconds");
                        std::process::exit(2);
                    }
                };
                options.solver.budget.timeout =
                    Some(std::time::Duration::from_millis(ms));
            }
            "--solver-mode" => {
                i += 1;
                match args.get(i).and_then(|v| bf4_smt::SolverMode::parse(v)) {
                    Some(mode) => options.solver.mode = mode,
                    None => {
                        eprintln!("bf4: --solver-mode expects oneshot, incremental or portfolio");
                        std::process::exit(2);
                    }
                }
            }
            "--solver-fallback" => {
                i += 1;
                match args.get(i).map(|s| s.as_str()) {
                    Some("off") => options.solver.budget.fallback_max_size = 0,
                    Some(v) => match v.parse::<usize>() {
                        Ok(n) => options.solver.budget.fallback_max_size = n,
                        Err(_) => {
                            eprintln!(
                                "bf4: --solver-fallback expects a formula-size limit or `off`"
                            );
                            std::process::exit(2);
                        }
                    },
                    None => {
                        eprintln!("bf4: --solver-fallback expects a value");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => engine.jobs = n,
                    _ => {
                        eprintln!("bf4: --jobs expects a worker count >= 1");
                        std::process::exit(2);
                    }
                }
            }
            "--cache-cap" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) => {
                        engine.cache_cap = n;
                        cache_cap_set = true;
                    }
                    _ => {
                        eprintln!("bf4: --cache-cap expects a number of entries");
                        std::process::exit(2);
                    }
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => engine.cache_dir = Some(dir.into()),
                    None => {
                        eprintln!("bf4: --cache-dir expects a directory path");
                        std::process::exit(2);
                    }
                }
            }
            "--cache-persist" => cache_persist_flag = true,
            "--no-cache-persist" => no_cache_persist = true,
            "--no-fixes" => options.fixes = false,
            "--no-infer" => {
                options.fast_infer = false;
                options.infer = false;
                options.multi_table = false;
                options.fixes = false;
            }
            "--egress" => options.include_egress = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: bf4 <program.p4> [more.p4 ...] [--annotations FILE] [--no-fixes] [--no-infer] [--egress] [--dump-cfg FILE] [--timeout-ms N] [--solver-mode oneshot|incremental|portfolio] [--solver-fallback N|off] [--jobs N] [--cache-cap N] [--cache-dir DIR] [--no-cache-persist] [--trace-out FILE] [--profile] [--quiet]");
                eprintln!("       bf4 client (--socket PATH | --tcp ADDR) submit FILE [--program NAME] [--normalized] | status NAME | watch FILE [--program NAME] [--interval-ms N] | stats | metrics | ping | shutdown");
                eprintln!("       bf4 top (--socket PATH | --tcp ADDR) [--interval-ms N] [--iterations N]");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => {
                eprintln!("bf4: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if paths.is_empty() {
        eprintln!("bf4: missing input program (try --help)");
        std::process::exit(2);
    }
    if cache_persist_flag && engine.cache_dir.is_none() {
        eprintln!("bf4: --cache-persist needs --cache-dir");
        std::process::exit(2);
    }
    if cache_persist_flag && no_cache_persist {
        eprintln!("bf4: --cache-persist and --no-cache-persist are mutually exclusive");
        std::process::exit(2);
    }
    // A durable store is pointless without saving back to it: --cache-dir
    // implies persistence, with --no-cache-persist as the escape hatch.
    engine.cache_persist = engine.cache_dir.is_some() && !no_cache_persist;
    // A durable store without an in-memory cache would have nothing to
    // warm: give --cache-dir a working default capacity.
    if engine.cache_dir.is_some() && !cache_cap_set && engine.cache_cap == 0 {
        engine.cache_cap = 65536;
    }
    if annotations_out.is_some() && paths.len() > 1 {
        eprintln!("bf4: --annotations only works with a single input program");
        std::process::exit(2);
    }

    let mut programs: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(s) => programs.push((path.clone(), s)),
            Err(e) => {
                eprintln!("bf4: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    if trace_out.is_some() || profile {
        bf4_obs::set_enabled(true);
    }

    if let Some(dot_path) = &dump_cfg {
        match dump_dot(&programs[0].1, &options) {
            Ok(dot) => {
                if let Err(e) = std::fs::write(dot_path, dot) {
                    eprintln!("bf4: cannot write {dot_path}: {e}");
                    std::process::exit(2);
                }
            }
            Err(e) => {
                eprintln!("bf4: {e}");
                std::process::exit(2);
            }
        }
    }

    let use_engine = engine.jobs > 1
        || engine.cache_cap > 0
        || engine.cache_dir.is_some()
        || programs.len() > 1;
    let (reports, engine_stats): (Vec<Report>, Option<EngineStats>) = if use_engine {
        // Frontend errors become degraded reports inside the engine; parse
        // here first so they keep the classic exit-code-2 CLI behavior.
        for (path, source) in &programs {
            if let Err(e) = bf4_p4::frontend(source) {
                eprintln!("bf4: {path}: {e}");
                std::process::exit(2);
            }
        }
        let (reports, stats) = verify_corpus(&programs, &options, &engine);
        for ((path, _), report) in programs.iter().zip(&reports) {
            if report.bugs.is_empty() && report.degraded.iter().any(|d| d.stage == "frontend") {
                eprintln!(
                    "bf4: {path}: {}",
                    report
                        .degraded
                        .first()
                        .map(|d| d.error.as_str())
                        .unwrap_or("frontend error")
                );
                std::process::exit(2);
            }
        }
        (reports, Some(stats))
    } else {
        match verify(&programs[0].1, &options) {
            Ok(r) => (vec![r], None),
            Err(e) => {
                eprintln!("bf4: {}: {e}", programs[0].0);
                std::process::exit(2);
            }
        }
    };

    for ((path, _), report) in programs.iter().zip(&reports) {
        print_report(path, report, quiet);
    }
    if let Some(stats) = &engine_stats {
        // The cache's effectiveness in the standard summary, not only in
        // the verbose stats dump. A lookup answered from the cache is a
        // hit whether the entry was computed this session or warm-started
        // from the store; `[N warm]` breaks out the latter and `preloaded`
        // counts entries loaded, not lookups (DESIGN.md §11).
        println!(
            "summary: {} program(s); cache hit-rate {:.1}% ({} hit(s) [{} warm] / {} miss(es), {} preloaded), {} eviction(s)",
            programs.len(),
            100.0 * stats.cache.hit_rate(),
            stats.cache.hits,
            stats.cache.warm_hits,
            stats.cache.misses,
            stats.cache.preloaded,
            stats.cache.evictions
        );
        if let Some(p) = &stats.persist {
            println!(
                "cache store: generation {}; loaded {} entr(ies), {} corrupt record(s) dropped, {} stale file(s); saved {} ({} appended, compacted: {}), {} I/O error(s)",
                p.generation,
                p.loaded,
                p.corrupt_records,
                p.stale_files,
                p.saved,
                p.appended,
                p.compacted,
                p.io_errors
            );
        }
        if !quiet {
            print!("{stats}");
        }
    }
    // A BF4_FAULTS chaos run audits itself: which sites were reached and
    // how often the schedule actually injected (stderr keeps stdout
    // script-stable).
    if bf4_obs::fault::active() {
        for s in bf4_obs::fault::stats() {
            eprintln!("fault site {}: {} hit(s), {} injected", s.site, s.hits, s.fires);
        }
    }

    if programs.len() == 1 {
        let text = reports[0].annotations.to_string();
        match annotations_out {
            Some(f) => {
                if let Err(e) = std::fs::write(&f, &text) {
                    eprintln!("bf4: cannot write {f}: {e}");
                    std::process::exit(2);
                }
                println!(
                    "wrote {} annotation(s) over {} table(s) to {f}",
                    reports[0].annotations.specs.len(),
                    reports[0].annotations.tables.len()
                );
            }
            None => {
                println!("--- controller annotations ---");
                let mut stdout = std::io::stdout().lock();
                let _ = stdout.write_all(text.as_bytes());
            }
        }
    }

    finish_tracing(trace_out.as_deref(), profile);

    let any_bugs = reports.iter().any(|r| r.bugs_after_fixes > 0);
    std::process::exit(if any_bugs { 1 } else { 0 });
}

fn print_report(path: &str, report: &Report, quiet: bool) {
    println!(
        "{path}: {} bug(s) with all rules possible; {} after annotations; {} after fixes",
        report.bugs_total, report.bugs_after_infer, report.bugs_after_fixes
    );
    if !quiet {
        for bug in &report.bugs {
            println!(
                "  [{}] line {:>4} {:?} {}",
                bug.kind, bug.line, bug.status, bug.description
            );
        }
    }
    if report.keys_added > 0 {
        println!(
            "proposed fixes ({} key(s) across {} table(s)):",
            report.keys_added, report.tables_modified
        );
        print!("{}", report.fix_description);
    }
    if report.egress_spec_fix {
        println!("suggested fix: initialize egress_spec to drop at the start of ingress (§4.6)");
    }
    if report.bugs_undecided > 0 {
        println!(
            "warning: {} bug(s) undecided within the solver budget (counted as potential bugs)",
            report.bugs_undecided
        );
    }
    for d in &report.degraded {
        println!(
            "warning: stage `{}` degraded after {:?} ({} solver queries): {}",
            d.stage, d.duration, d.queries_used, d.error
        );
    }
}

/// Drain collected spans into `--trace-out` JSONL and/or the `--profile`
/// flame rendering (stderr, so stdout stays script-stable).
fn finish_tracing(trace_out: Option<&str>, profile: bool) {
    if trace_out.is_none() && !profile {
        return;
    }
    let records = bf4_obs::take_spans();
    if let Some(path) = trace_out {
        let jsonl = bf4_obs::render_jsonl(&records);
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("bf4: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    if profile {
        let spans: Vec<bf4_obs::TraceSpan> = records.iter().map(Into::into).collect();
        eprint!("{}", bf4_obs::render_flame(&spans));
    }
}

fn dump_dot(source: &str, options: &VerifyOptions) -> Result<String, String> {
    let program = bf4_p4::frontend(source).map_err(|e| e.to_string())?;
    let (cfg, _) =
        bf4_core::driver::build_cfg(&program, options).map_err(|e| e.to_string())?;
    Ok(bf4_ir::cfg::to_dot(&cfg))
}

// ---------------------------------------------------------------------------
// `bf4 client` — talk to a running `bf4d` over its length-prefixed JSON
// protocol. The engine crate cannot depend on bf4-daemon (the daemon
// depends on the engine), so the tiny frame + JSON encoding lives here;
// the wire format is documented in `bf4_daemon::proto` and covered by the
// ci.sh daemon smoke, which diffs a client round trip against a one-shot
// run.

/// Where the daemon listens; each request opens a fresh connection (the
/// daemon serves connections sequentially).
enum Endpoint {
    Unix(std::path::PathBuf),
    Tcp(String),
}

enum ClientConn {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl std::io::Read for ClientConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientConn::Unix(s) => s.read(buf),
            ClientConn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ClientConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientConn::Unix(s) => s.write(buf),
            ClientConn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientConn::Unix(s) => s.flush(),
            ClientConn::Tcp(s) => s.flush(),
        }
    }
}

fn client_usage(msg: &str) -> ! {
    eprintln!("bf4 client: {msg} (try --help)");
    std::process::exit(2);
}

/// One request/response round trip; connection and protocol failures are
/// fatal with exit code 2 (the daemon is unreachable or broken, there is
/// no verdict to report).
fn client_request(endpoint: &Endpoint, body: &str) -> bf4_obs::json::Value {
    let mut conn = match endpoint {
        Endpoint::Unix(path) => match std::os::unix::net::UnixStream::connect(path) {
            Ok(s) => ClientConn::Unix(s),
            Err(e) => {
                eprintln!("bf4 client: cannot connect to {}: {e}", path.display());
                std::process::exit(2);
            }
        },
        Endpoint::Tcp(addr) => match std::net::TcpStream::connect(addr) {
            Ok(s) => ClientConn::Tcp(s),
            Err(e) => {
                eprintln!("bf4 client: cannot connect to {addr}: {e}");
                std::process::exit(2);
            }
        },
    };
    let fail = |what: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("bf4 client: {what}: {e}");
        std::process::exit(2);
    };
    // 4-byte big-endian length prefix, then the JSON body.
    let len = u32::try_from(body.len()).unwrap_or_else(|e| fail("request too large", &e));
    conn.write_all(&len.to_be_bytes())
        .and_then(|()| conn.write_all(body.as_bytes()))
        .and_then(|()| conn.flush())
        .unwrap_or_else(|e| fail("send failed", &e));
    let mut len_buf = [0u8; 4];
    std::io::Read::read_exact(&mut conn, &mut len_buf)
        .unwrap_or_else(|e| fail("no response", &e));
    let rlen = u32::from_be_bytes(len_buf);
    if rlen > 64 * 1024 * 1024 {
        fail("response frame too large", &rlen);
    }
    let mut rbody = vec![0u8; rlen as usize];
    std::io::Read::read_exact(&mut conn, &mut rbody)
        .unwrap_or_else(|e| fail("truncated response", &e));
    let text = String::from_utf8(rbody).unwrap_or_else(|e| fail("response not UTF-8", &e));
    bf4_obs::json::parse(&text).unwrap_or_else(|e| fail("response not JSON", &e))
}

fn response_u64(v: &bf4_obs::json::Value, key: &str) -> u64 {
    v.as_obj()
        .and_then(|o| o.get(key))
        .and_then(bf4_obs::json::Value::as_u64)
        .unwrap_or_else(|| {
            eprintln!("bf4 client: response missing field `{key}`");
            std::process::exit(2);
        })
}

fn response_str<'v>(v: &'v bf4_obs::json::Value, key: &str) -> &'v str {
    v.as_obj()
        .and_then(|o| o.get(key))
        .and_then(bf4_obs::json::Value::as_str)
        .unwrap_or_else(|| {
            eprintln!("bf4 client: response missing field `{key}`");
            std::process::exit(2);
        })
}

/// Exit early if the daemon answered `"ok": false`.
fn check_ok(v: &bf4_obs::json::Value) {
    let ok = v
        .as_obj()
        .and_then(|o| o.get("ok"))
        .map(|b| b == &bf4_obs::json::Value::Bool(true))
        .unwrap_or(false);
    if !ok {
        let err = v
            .as_obj()
            .and_then(|o| o.get("error"))
            .and_then(bf4_obs::json::Value::as_str)
            .unwrap_or("daemon reported an error");
        eprintln!("bf4 client: {err}");
        std::process::exit(2);
    }
}

/// Print one verdict response. With `normalized`, stdout carries exactly
/// the normalized report (diffable against a one-shot `bf4` run) and the
/// incremental summary goes to stderr; otherwise both go to stdout.
/// Returns the verdict's exit code.
fn print_verdict(v: &bf4_obs::json::Value, normalized: bool) -> i32 {
    check_ok(v);
    // The request ID ties this verdict to the daemon's trace/time-series
    // records (`report profile --request <id>`); old daemons omit it.
    let request = v
        .as_obj()
        .and_then(|o| o.get("request"))
        .and_then(bf4_obs::json::Value::as_str)
        .unwrap_or("");
    let summary = format!(
        "{}{} v{}: {} bug(s) with all rules possible; {} after annotations; {} after fixes; \
         {} undecided; {} degraded stage(s); skips={} reverified={} wall={}us",
        if request.is_empty() {
            String::new()
        } else {
            format!("[{request}] ")
        },
        response_str(v, "program"),
        response_u64(v, "version"),
        response_u64(v, "bugs_total"),
        response_u64(v, "bugs_after_infer"),
        response_u64(v, "bugs_after_fixes"),
        response_u64(v, "bugs_undecided"),
        response_u64(v, "degraded"),
        response_u64(v, "skips"),
        response_u64(v, "reverified"),
        response_u64(v, "wall_micros"),
    );
    if normalized {
        eprintln!("{summary}");
        print!("{}", response_str(v, "report"));
    } else {
        println!("{summary}");
    }
    i32::try_from(response_u64(v, "exit_code")).unwrap_or(1)
}

fn submit_body(program: &str, source: &str) -> String {
    format!(
        "{{\"op\":\"submit\",\"program\":{},\"source\":{}}}",
        bf4_obs::json::escape(program),
        bf4_obs::json::escape(source)
    )
}

/// Derive the daemon-side program name from a path: file stem, falling
/// back to the whole path.
fn program_name(path: &str, explicit: Option<&str>) -> String {
    if let Some(name) = explicit {
        return name.to_string();
    }
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path)
        .to_string()
}

fn client_main(args: &[String]) -> i32 {
    let mut endpoint: Option<Endpoint> = None;
    let mut action: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut program: Option<String> = None;
    let mut normalized = false;
    let mut interval_ms: u64 = 500;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                i += 1;
                match args.get(i) {
                    Some(p) => endpoint = Some(Endpoint::Unix(p.into())),
                    None => client_usage("--socket expects a path"),
                }
            }
            "--tcp" => {
                i += 1;
                match args.get(i) {
                    Some(a) => endpoint = Some(Endpoint::Tcp(a.clone())),
                    None => client_usage("--tcp expects an address"),
                }
            }
            "--program" => {
                i += 1;
                match args.get(i) {
                    Some(n) => program = Some(n.clone()),
                    None => client_usage("--program expects a name"),
                }
            }
            "--normalized" => normalized = true,
            "--interval-ms" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<u64>()) {
                    Some(Ok(ms)) if ms >= 1 => interval_ms = ms,
                    _ => client_usage("--interval-ms expects a millisecond count >= 1"),
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bf4 client (--socket PATH | --tcp ADDR) submit FILE \
                     [--program NAME] [--normalized] | status NAME | watch FILE \
                     [--program NAME] [--interval-ms N] | stats | metrics | ping | shutdown"
                );
                std::process::exit(0);
            }
            other if action.is_none() && !other.starts_with('-') => {
                action = Some(other.to_string());
            }
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => client_usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    let Some(endpoint) = endpoint else {
        client_usage("one of --socket or --tcp is required");
    };
    let action = action.unwrap_or_else(|| client_usage("missing action"));

    match action.as_str() {
        "submit" => {
            let path = positional
                .first()
                .unwrap_or_else(|| client_usage("submit expects a .p4 file"));
            let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("bf4 client: cannot read {path}: {e}");
                std::process::exit(2);
            });
            let name = program_name(path, program.as_deref());
            let v = client_request(&endpoint, &submit_body(&name, &source));
            print_verdict(&v, normalized)
        }
        "status" => {
            let name = positional
                .first()
                .unwrap_or_else(|| client_usage("status expects a program name"));
            let body = format!(
                "{{\"op\":\"status\",\"program\":{}}}",
                bf4_obs::json::escape(name)
            );
            let v = client_request(&endpoint, &body);
            print_verdict(&v, normalized)
        }
        "watch" => {
            let path = positional
                .first()
                .unwrap_or_else(|| client_usage("watch expects a .p4 file"));
            let name = program_name(path, program.as_deref());
            let mtime = |p: &str| {
                std::fs::metadata(p).and_then(|m| m.modified()).ok()
            };
            let mut last = mtime(path);
            loop {
                match std::fs::read_to_string(path) {
                    Ok(source) => {
                        let v = client_request(&endpoint, &submit_body(&name, &source));
                        print_verdict(&v, normalized);
                    }
                    Err(e) => eprintln!("bf4 client: cannot read {path}: {e}"),
                }
                // Poll the mtime; resubmit on any change (editors that
                // replace the file change the inode, metadata still moves).
                loop {
                    std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                    let now = mtime(path);
                    if now != last {
                        last = now;
                        break;
                    }
                }
            }
        }
        "stats" => {
            let v = client_request(&endpoint, "{\"op\":\"stats\"}");
            check_ok(&v);
            for key in [
                "requests",
                "submits",
                "errors",
                "programs",
                "skips",
                "reverified",
                "cache_hits",
                "cache_warm_hits",
                "cache_misses",
                "cache_preloaded",
                "degraded_submits",
                "alerts",
                "active_alerts",
            ] {
                println!("{key}: {}", response_u64(&v, key));
            }
            0
        }
        "metrics" => {
            let v = client_request(&endpoint, "{\"op\":\"metrics\"}");
            check_ok(&v);
            print!("{}", response_str(&v, "metrics"));
            0
        }
        "ping" => {
            let v = client_request(&endpoint, "{\"op\":\"ping\"}");
            check_ok(&v);
            println!("pong");
            0
        }
        "shutdown" => {
            let v = client_request(&endpoint, "{\"op\":\"shutdown\"}");
            check_ok(&v);
            println!("shutdown: ok");
            0
        }
        other => client_usage(&format!("unknown action `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// `bf4 top` — a live dashboard over a running daemon, built from the same
// two protocol ops any monitoring stack would scrape (`stats` for the
// authoritative counters, `metrics` for the latency quantiles).

/// One polled snapshot of the daemon, as rendered by `bf4 top`.
struct TopSnapshot {
    requests: u64,
    submits: u64,
    skips: u64,
    reverified: u64,
    cache_hits: u64,
    cache_misses: u64,
    degraded: u64,
    active_alerts: u64,
    programs: u64,
    /// `daemon.request_micros` quantile bounds from the exposition, when
    /// the daemon has served at least one submission.
    p50: Option<f64>,
    p90: Option<f64>,
    p99: Option<f64>,
}

fn top_poll(endpoint: &Endpoint) -> TopSnapshot {
    let v = client_request(endpoint, "{\"op\":\"stats\"}");
    check_ok(&v);
    let m = client_request(endpoint, "{\"op\":\"metrics\"}");
    check_ok(&m);
    let quantile = |q: &str| -> Option<f64> {
        let text = m.as_obj()?.get("metrics")?.as_str()?;
        let exp = bf4_obs::expose::parse(text).ok()?;
        exp.value("bf4_daemon_request_micros", &[("quantile", q)])
    };
    TopSnapshot {
        requests: response_u64(&v, "requests"),
        submits: response_u64(&v, "submits"),
        skips: response_u64(&v, "skips"),
        reverified: response_u64(&v, "reverified"),
        cache_hits: response_u64(&v, "cache_hits"),
        cache_misses: response_u64(&v, "cache_misses"),
        degraded: response_u64(&v, "degraded_submits"),
        active_alerts: response_u64(&v, "active_alerts"),
        programs: response_u64(&v, "programs"),
        p50: quantile("0.5"),
        p90: quantile("0.9"),
        p99: quantile("0.99"),
    }
}

fn top_render(now: &TopSnapshot, prev: Option<&TopSnapshot>, interval: std::time::Duration) {
    let rate = match prev {
        Some(p) if interval.as_secs_f64() > 0.0 => {
            (now.requests.saturating_sub(p.requests)) as f64 / interval.as_secs_f64()
        }
        _ => 0.0,
    };
    let lookups = now.cache_hits + now.cache_misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        100.0 * now.cache_hits as f64 / lookups as f64
    };
    let us = |q: Option<f64>| match q {
        Some(v) => format!("<{}us", v as u64),
        None => "-".to_string(),
    };
    println!("bf4d — {} program(s), {} request(s) total", now.programs, now.requests);
    println!("  req/s     {rate:>8.1}");
    println!(
        "  latency   p50 {} / p90 {} / p99 {}",
        us(now.p50),
        us(now.p90),
        us(now.p99)
    );
    println!(
        "  cache     {hit_rate:>7.1}% hit rate ({} hit(s) / {} miss(es))",
        now.cache_hits, now.cache_misses
    );
    println!(
        "  increment {} skip(s), {} re-verification(s), {} submit(s)",
        now.skips, now.reverified, now.submits
    );
    println!("  degraded  {}", now.degraded);
    if now.active_alerts > 0 {
        println!("  ALERTS    {} active SLO violation(s)", now.active_alerts);
    } else {
        println!("  alerts    none");
    }
}

fn top_main(args: &[String]) -> i32 {
    let mut endpoint: Option<Endpoint> = None;
    let mut interval_ms: u64 = 1000;
    let mut iterations: u64 = 0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                i += 1;
                match args.get(i) {
                    Some(p) => endpoint = Some(Endpoint::Unix(p.into())),
                    None => client_usage("--socket expects a path"),
                }
            }
            "--tcp" => {
                i += 1;
                match args.get(i) {
                    Some(a) => endpoint = Some(Endpoint::Tcp(a.clone())),
                    None => client_usage("--tcp expects an address"),
                }
            }
            "--interval-ms" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<u64>()) {
                    Some(Ok(ms)) if ms >= 1 => interval_ms = ms,
                    _ => client_usage("--interval-ms expects a millisecond count >= 1"),
                }
            }
            "--iterations" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<u64>()) {
                    Some(Ok(n)) => iterations = n,
                    _ => client_usage("--iterations expects a count (0 = until interrupted)"),
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bf4 top (--socket PATH | --tcp ADDR) [--interval-ms N] \
                     [--iterations N]"
                );
                std::process::exit(0);
            }
            other => client_usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    let Some(endpoint) = endpoint else {
        client_usage("one of --socket or --tcp is required");
    };
    let interval = std::time::Duration::from_millis(interval_ms);
    let mut prev: Option<TopSnapshot> = None;
    let mut n = 0u64;
    loop {
        let snap = top_poll(&endpoint);
        // Redraw in place on a terminal; pipelines get appended frames. A
        // bounded --iterations run never clears, so tests see every frame.
        if prev.is_some() && iterations == 0 {
            print!("\x1b[2J\x1b[H");
        }
        top_render(&snap, prev.as_ref(), interval);
        let _ = std::io::Write::flush(&mut std::io::stdout());
        prev = Some(snap);
        n += 1;
        if iterations > 0 && n >= iterations {
            return 0;
        }
        std::thread::sleep(interval);
    }
}

/// `bf4 controller` — drive a synthetic update workload through the
/// sharded line-rate shim, or (with `--campaign`) the full staged-load
/// stress campaign with its gates.
fn controller_main(args: &[String]) -> i32 {
    let mut path: Option<String> = None;
    let mut updates = 2000usize;
    let mut campaign = false;
    let mut out: Option<String> = None;
    let mut journal: Option<String> = None;
    let mut config = bf4_shim::campaign::CampaignConfig::default();
    let usage = || {
        eprintln!(
            "usage: bf4 controller <file.p4> [--updates N] [--batch-size N] [--shards N] \
             [--threads N] [--seed N] [--faulty F] [--journal FILE] [--campaign] [--out FILE] [--dir DIR]"
        );
        2
    };
    let mut i = 0;
    while i < args.len() {
        // Numeric flags share one parse-or-die shape.
        macro_rules! num {
            ($what:literal) => {{
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("bf4 controller: {} expects a number", $what);
                        return 2;
                    }
                }
            }};
        }
        match args[i].as_str() {
            "--updates" => updates = num!("--updates"),
            "--batch-size" => config.batch_size = num!("--batch-size"),
            "--shards" => config.shards = num!("--shards"),
            "--threads" => config.threads = num!("--threads"),
            "--seed" => config.seed = num!("--seed"),
            "--faulty" => config.faulty_fraction = num!("--faulty"),
            "--campaign" => campaign = true,
            "--journal" => {
                i += 1;
                journal = args.get(i).cloned();
                if journal.is_none() {
                    return usage();
                }
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
                if out.is_none() {
                    return usage();
                }
            }
            "--dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => config.dir = d.into(),
                    None => return usage(),
                }
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return usage(),
        }
        i += 1;
    }
    let Some(path) = path else { return usage() };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bf4 controller: cannot read {path}: {e}");
            return 2;
        }
    };
    let report = match verify(&source, &VerifyOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bf4 controller: {path}: {e}");
            return 2;
        }
    };
    println!(
        "controller: {path}: {} table(s), {} assertion(s)",
        report.annotations.tables.len(),
        report.annotations.specs.len()
    );

    if campaign {
        let campaign_report =
            match bf4_shim::campaign::run_campaign(&report.annotations, &config) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("bf4 controller: campaign failed: {e}");
                    return 2;
                }
            };
        print!("{}", campaign_report.render_text());
        if let Some(out) = out {
            if let Err(e) = std::fs::write(&out, campaign_report.to_json()) {
                eprintln!("bf4 controller: cannot write {out}: {e}");
                return 2;
            }
            println!("wrote {out}");
        }
        let gates = campaign_report.gate_violations();
        for g in &gates {
            eprintln!("gate: {g}");
        }
        return i32::from(!gates.is_empty());
    }

    // Plain mode: one batched stage over the whole workload, through the
    // same worker pool the campaign uses.
    let shim = match bf4_shim::ShardedShim::new(
        &report.annotations,
        &bf4_shim::ShimConfig {
            shards: config.shards,
            max_inflight: config.max_inflight,
            journal_path: journal.as_ref().map(Into::into),
            fsync_per_update: false,
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bf4 controller: cannot open journal: {e}");
            return 2;
        }
    };
    let workload = bf4_shim::controller::Controller::new(
        &report.annotations,
        bf4_shim::controller::WorkloadConfig {
            updates,
            faulty_fraction: config.faulty_fraction,
            delete_fraction: 0.05,
            seed: config.seed,
            ..bf4_shim::controller::WorkloadConfig::default()
        },
    )
    .workload();
    let batches = bf4_shim::campaign::chunk(workload, config.batch_size);
    let stage = bf4_shim::campaign::run_stage(&shim, "serve", &batches, config.threads);
    println!(
        "offered {} batch(es) ({updates} updates, batch={}) on {} thread(s) over {} shard(s)",
        stage.batches, config.batch_size, config.threads, shim.shard_count()
    );
    println!(
        "acked {} ({} updates), rejected {}, shed {}, journal-failed {}, poisoned {}",
        stage.acked, stage.updates_acked, stage.rejected, stage.shed, stage.journal_failed,
        stage.poisoned
    );
    println!("batch latency: {}", stage.latency);
    let stats = shim.stats();
    println!(
        "journal: {} byte(s), {} fsync(s), {} append(s) amortized{}",
        shim.journal_bytes().len(),
        stats.fsyncs,
        stats.fsync_amortized,
        journal.map(|j| format!(" -> {j}")).unwrap_or_default()
    );
    let violations = shim.audit_violations();
    if violations.is_empty() {
        println!("audit: clean — no live rule violates an inferred assertion");
        0
    } else {
        for v in &violations {
            eprintln!("audit violation: {v}");
        }
        1
    }
}
