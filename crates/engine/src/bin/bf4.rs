//! `bf4` — command-line front end to the verifier, mirroring the paper's
//! p4c-backend workflow: read one or more P4 programs, run the full
//! pipeline, and write the controller annotations plus the proposed fixes.
//!
//! ```text
//! bf4 <program.p4> [more.p4 ...] [options]
//!   --annotations <file>   write the controller annotations (default: stdout;
//!                          single-program runs only)
//!   --no-fixes             stop after inference (report-only mode)
//!   --no-infer             only find reachable bugs (p4v-like mode)
//!   --egress               also analyze the egress pipeline (in separation)
//!   --dump-cfg <file>      write the instrumented CFG in Graphviz DOT form
//!   --timeout-ms <n>       per-query solver deadline in milliseconds
//!   --solver-fallback <n|off>  max formula size routed to the internal
//!                          fallback solver (`off` disables the fallback)
//!   --jobs <n>             worker threads (default 1: the sequential path)
//!   --cache-cap <n>        SMT query-cache capacity in entries (default 0: off)
//!   --cache-dir <dir>      warm-start the query cache from a durable store in
//!                          <dir> (implies --cache-cap 65536 unless set)
//!   --cache-persist        write the session's new cache entries back to
//!                          --cache-dir on exit (append + atomic compaction)
//!   --trace-out <file>     write the run's spans as JSONL (bf4-obs schema)
//!   --profile              print a flame-style span breakdown to stderr
//!   --quiet                suppress the per-bug listing
//! ```
//!
//! With `--jobs 1`, `--cache-cap 0` and a single program (the defaults)
//! verification runs the classic sequential pipeline; any other
//! combination routes through the parallel engine (identical results,
//! plus engine statistics and a cache summary line).
//!
//! Exit code: 0 when every bug is controlled/fixed, 1 when dataplane bugs
//! remain, 2 on usage or frontend errors.

use bf4_core::driver::{verify, Report, VerifyOptions};
use bf4_engine::{verify_corpus, EngineConfig, EngineStats};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut annotations_out: Option<String> = None;
    let mut dump_cfg: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut profile = false;
    let mut quiet = false;
    let mut options = VerifyOptions::default();
    let mut engine = EngineConfig::default();
    let mut cache_cap_set = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--annotations" => {
                i += 1;
                annotations_out = args.get(i).cloned();
            }
            "--dump-cfg" => {
                i += 1;
                dump_cfg = args.get(i).cloned();
            }
            "--trace-out" => {
                i += 1;
                trace_out = args.get(i).cloned();
                if trace_out.is_none() {
                    eprintln!("bf4: --trace-out expects an output path");
                    std::process::exit(2);
                }
            }
            "--profile" => profile = true,
            "--timeout-ms" => {
                i += 1;
                let ms: u64 = match args.get(i).map(|v| v.parse()) {
                    Some(Ok(ms)) => ms,
                    _ => {
                        eprintln!("bf4: --timeout-ms expects a number of milliseconds");
                        std::process::exit(2);
                    }
                };
                options.solver.budget.timeout =
                    Some(std::time::Duration::from_millis(ms));
            }
            "--solver-fallback" => {
                i += 1;
                match args.get(i).map(|s| s.as_str()) {
                    Some("off") => options.solver.budget.fallback_max_size = 0,
                    Some(v) => match v.parse::<usize>() {
                        Ok(n) => options.solver.budget.fallback_max_size = n,
                        Err(_) => {
                            eprintln!(
                                "bf4: --solver-fallback expects a formula-size limit or `off`"
                            );
                            std::process::exit(2);
                        }
                    },
                    None => {
                        eprintln!("bf4: --solver-fallback expects a value");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => engine.jobs = n,
                    _ => {
                        eprintln!("bf4: --jobs expects a worker count >= 1");
                        std::process::exit(2);
                    }
                }
            }
            "--cache-cap" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) => {
                        engine.cache_cap = n;
                        cache_cap_set = true;
                    }
                    _ => {
                        eprintln!("bf4: --cache-cap expects a number of entries");
                        std::process::exit(2);
                    }
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => engine.cache_dir = Some(dir.into()),
                    None => {
                        eprintln!("bf4: --cache-dir expects a directory path");
                        std::process::exit(2);
                    }
                }
            }
            "--cache-persist" => engine.cache_persist = true,
            "--no-fixes" => options.fixes = false,
            "--no-infer" => {
                options.fast_infer = false;
                options.infer = false;
                options.multi_table = false;
                options.fixes = false;
            }
            "--egress" => options.include_egress = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: bf4 <program.p4> [more.p4 ...] [--annotations FILE] [--no-fixes] [--no-infer] [--egress] [--dump-cfg FILE] [--timeout-ms N] [--solver-fallback N|off] [--jobs N] [--cache-cap N] [--cache-dir DIR] [--cache-persist] [--trace-out FILE] [--profile] [--quiet]");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => {
                eprintln!("bf4: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if paths.is_empty() {
        eprintln!("bf4: missing input program (try --help)");
        std::process::exit(2);
    }
    if engine.cache_persist && engine.cache_dir.is_none() {
        eprintln!("bf4: --cache-persist needs --cache-dir");
        std::process::exit(2);
    }
    // A durable store without an in-memory cache would have nothing to
    // warm: give --cache-dir a working default capacity.
    if engine.cache_dir.is_some() && !cache_cap_set && engine.cache_cap == 0 {
        engine.cache_cap = 65536;
    }
    if annotations_out.is_some() && paths.len() > 1 {
        eprintln!("bf4: --annotations only works with a single input program");
        std::process::exit(2);
    }

    let mut programs: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(s) => programs.push((path.clone(), s)),
            Err(e) => {
                eprintln!("bf4: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    if trace_out.is_some() || profile {
        bf4_obs::set_enabled(true);
    }

    if let Some(dot_path) = &dump_cfg {
        match dump_dot(&programs[0].1, &options) {
            Ok(dot) => {
                if let Err(e) = std::fs::write(dot_path, dot) {
                    eprintln!("bf4: cannot write {dot_path}: {e}");
                    std::process::exit(2);
                }
            }
            Err(e) => {
                eprintln!("bf4: {e}");
                std::process::exit(2);
            }
        }
    }

    let use_engine = engine.jobs > 1
        || engine.cache_cap > 0
        || engine.cache_dir.is_some()
        || programs.len() > 1;
    let (reports, engine_stats): (Vec<Report>, Option<EngineStats>) = if use_engine {
        // Frontend errors become degraded reports inside the engine; parse
        // here first so they keep the classic exit-code-2 CLI behavior.
        for (path, source) in &programs {
            if let Err(e) = bf4_p4::frontend(source) {
                eprintln!("bf4: {path}: {e}");
                std::process::exit(2);
            }
        }
        let (reports, stats) = verify_corpus(&programs, &options, &engine);
        for ((path, _), report) in programs.iter().zip(&reports) {
            if report.bugs.is_empty() && report.degraded.iter().any(|d| d.stage == "frontend") {
                eprintln!(
                    "bf4: {path}: {}",
                    report
                        .degraded
                        .first()
                        .map(|d| d.error.as_str())
                        .unwrap_or("frontend error")
                );
                std::process::exit(2);
            }
        }
        (reports, Some(stats))
    } else {
        match verify(&programs[0].1, &options) {
            Ok(r) => (vec![r], None),
            Err(e) => {
                eprintln!("bf4: {}: {e}", programs[0].0);
                std::process::exit(2);
            }
        }
    };

    for ((path, _), report) in programs.iter().zip(&reports) {
        print_report(path, report, quiet);
    }
    if let Some(stats) = &engine_stats {
        // Satellite of the observability PR: the cache's effectiveness in
        // the standard summary, not only in the verbose stats dump. A
        // warm start (--cache-dir) shows up as preloaded entries feeding
        // the hit rate.
        println!(
            "summary: {} program(s); cache hit-rate {:.1}% ({} hit(s) / {} miss(es), {} preloaded), {} eviction(s)",
            programs.len(),
            100.0 * stats.cache.hit_rate(),
            stats.cache.hits,
            stats.cache.misses,
            stats.cache.preloaded,
            stats.cache.evictions
        );
        if let Some(p) = &stats.persist {
            println!(
                "cache store: generation {}; loaded {} entr(ies), {} corrupt record(s) dropped, {} stale file(s); saved {} ({} appended, compacted: {}), {} I/O error(s)",
                p.generation,
                p.loaded,
                p.corrupt_records,
                p.stale_files,
                p.saved,
                p.appended,
                p.compacted,
                p.io_errors
            );
        }
        if !quiet {
            print!("{stats}");
        }
    }
    // A BF4_FAULTS chaos run audits itself: which sites were reached and
    // how often the schedule actually injected (stderr keeps stdout
    // script-stable).
    if bf4_obs::fault::active() {
        for s in bf4_obs::fault::stats() {
            eprintln!("fault site {}: {} hit(s), {} injected", s.site, s.hits, s.fires);
        }
    }

    if programs.len() == 1 {
        let text = reports[0].annotations.to_string();
        match annotations_out {
            Some(f) => {
                if let Err(e) = std::fs::write(&f, &text) {
                    eprintln!("bf4: cannot write {f}: {e}");
                    std::process::exit(2);
                }
                println!(
                    "wrote {} annotation(s) over {} table(s) to {f}",
                    reports[0].annotations.specs.len(),
                    reports[0].annotations.tables.len()
                );
            }
            None => {
                println!("--- controller annotations ---");
                let mut stdout = std::io::stdout().lock();
                let _ = stdout.write_all(text.as_bytes());
            }
        }
    }

    finish_tracing(trace_out.as_deref(), profile);

    let any_bugs = reports.iter().any(|r| r.bugs_after_fixes > 0);
    std::process::exit(if any_bugs { 1 } else { 0 });
}

fn print_report(path: &str, report: &Report, quiet: bool) {
    println!(
        "{path}: {} bug(s) with all rules possible; {} after annotations; {} after fixes",
        report.bugs_total, report.bugs_after_infer, report.bugs_after_fixes
    );
    if !quiet {
        for bug in &report.bugs {
            println!(
                "  [{}] line {:>4} {:?} {}",
                bug.kind, bug.line, bug.status, bug.description
            );
        }
    }
    if report.keys_added > 0 {
        println!(
            "proposed fixes ({} key(s) across {} table(s)):",
            report.keys_added, report.tables_modified
        );
        print!("{}", report.fix_description);
    }
    if report.egress_spec_fix {
        println!("suggested fix: initialize egress_spec to drop at the start of ingress (§4.6)");
    }
    if report.bugs_undecided > 0 {
        println!(
            "warning: {} bug(s) undecided within the solver budget (counted as potential bugs)",
            report.bugs_undecided
        );
    }
    for d in &report.degraded {
        println!(
            "warning: stage `{}` degraded after {:?} ({} solver queries): {}",
            d.stage, d.duration, d.queries_used, d.error
        );
    }
}

/// Drain collected spans into `--trace-out` JSONL and/or the `--profile`
/// flame rendering (stderr, so stdout stays script-stable).
fn finish_tracing(trace_out: Option<&str>, profile: bool) {
    if trace_out.is_none() && !profile {
        return;
    }
    let records = bf4_obs::take_spans();
    if let Some(path) = trace_out {
        let jsonl = bf4_obs::render_jsonl(&records);
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("bf4: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    if profile {
        let spans: Vec<bf4_obs::TraceSpan> = records.iter().map(Into::into).collect();
        eprint!("{}", bf4_obs::render_flame(&spans));
    }
}

fn dump_dot(source: &str, options: &VerifyOptions) -> Result<String, String> {
    let program = bf4_p4::frontend(source).map_err(|e| e.to_string())?;
    let (cfg, _) =
        bf4_core::driver::build_cfg(&program, options).map_err(|e| e.to_string())?;
    Ok(bf4_ir::cfg::to_dot(&cfg))
}
