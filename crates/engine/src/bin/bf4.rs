//! `bf4` — command-line front end to the verifier, mirroring the paper's
//! p4c-backend workflow: read a P4 program, run the full pipeline, and
//! write the controller annotations plus the proposed fixes.
//!
//! ```text
//! bf4 <program.p4> [options]
//!   --annotations <file>   write the controller annotations (default: stdout)
//!   --no-fixes             stop after inference (report-only mode)
//!   --no-infer             only find reachable bugs (p4v-like mode)
//!   --egress               also analyze the egress pipeline (in separation)
//!   --dump-cfg <file>      write the instrumented CFG in Graphviz DOT form
//!   --timeout-ms <n>       per-query solver deadline in milliseconds
//!   --solver-fallback <n|off>  max formula size routed to the internal
//!                          fallback solver (`off` disables the fallback)
//!   --jobs <n>             worker threads (default 1: the sequential path)
//!   --cache-cap <n>        SMT query-cache capacity in entries (default 0: off)
//!   --quiet                suppress the per-bug listing
//! ```
//!
//! With `--jobs 1` and `--cache-cap 0` (the defaults) verification runs
//! the classic sequential pipeline; any other combination routes through
//! the parallel engine (identical results, plus engine statistics).
//!
//! Exit code: 0 when every bug is controlled/fixed, 1 when dataplane bugs
//! remain, 2 on usage or frontend errors.

use bf4_core::driver::{verify, VerifyOptions};
use bf4_engine::{verify_one, EngineConfig};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut annotations_out: Option<String> = None;
    let mut dump_cfg: Option<String> = None;
    let mut quiet = false;
    let mut options = VerifyOptions::default();
    let mut engine = EngineConfig::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--annotations" => {
                i += 1;
                annotations_out = args.get(i).cloned();
            }
            "--dump-cfg" => {
                i += 1;
                dump_cfg = args.get(i).cloned();
            }
            "--timeout-ms" => {
                i += 1;
                let ms: u64 = match args.get(i).map(|v| v.parse()) {
                    Some(Ok(ms)) => ms,
                    _ => {
                        eprintln!("bf4: --timeout-ms expects a number of milliseconds");
                        std::process::exit(2);
                    }
                };
                options.solver.budget.timeout =
                    Some(std::time::Duration::from_millis(ms));
            }
            "--solver-fallback" => {
                i += 1;
                match args.get(i).map(|s| s.as_str()) {
                    Some("off") => options.solver.budget.fallback_max_size = 0,
                    Some(v) => match v.parse::<usize>() {
                        Ok(n) => options.solver.budget.fallback_max_size = n,
                        Err(_) => {
                            eprintln!(
                                "bf4: --solver-fallback expects a formula-size limit or `off`"
                            );
                            std::process::exit(2);
                        }
                    },
                    None => {
                        eprintln!("bf4: --solver-fallback expects a value");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => engine.jobs = n,
                    _ => {
                        eprintln!("bf4: --jobs expects a worker count >= 1");
                        std::process::exit(2);
                    }
                }
            }
            "--cache-cap" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) => engine.cache_cap = n,
                    _ => {
                        eprintln!("bf4: --cache-cap expects a number of entries");
                        std::process::exit(2);
                    }
                }
            }
            "--no-fixes" => options.fixes = false,
            "--no-infer" => {
                options.fast_infer = false;
                options.infer = false;
                options.multi_table = false;
                options.fixes = false;
            }
            "--egress" => options.include_egress = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: bf4 <program.p4> [--annotations FILE] [--no-fixes] [--no-infer] [--egress] [--dump-cfg FILE] [--timeout-ms N] [--solver-fallback N|off] [--jobs N] [--cache-cap N] [--quiet]");
                std::process::exit(0);
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string())
            }
            other => {
                eprintln!("bf4: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let Some(path) = path else {
        eprintln!("bf4: missing input program (try --help)");
        std::process::exit(2);
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bf4: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };

    if let Some(dot_path) = &dump_cfg {
        match dump_dot(&source, &options) {
            Ok(dot) => {
                if let Err(e) = std::fs::write(dot_path, dot) {
                    eprintln!("bf4: cannot write {dot_path}: {e}");
                    std::process::exit(2);
                }
            }
            Err(e) => {
                eprintln!("bf4: {e}");
                std::process::exit(2);
            }
        }
    }

    let use_engine = engine.jobs > 1 || engine.cache_cap > 0;
    let (report, engine_stats) = if use_engine {
        // Frontend errors become degraded reports inside the engine; parse
        // here first so they keep the classic exit-code-2 CLI behavior.
        if let Err(e) = bf4_p4::frontend(&source) {
            eprintln!("bf4: {path}: {e}");
            std::process::exit(2);
        }
        let (report, stats) = verify_one(&path, &source, &options, &engine);
        if report.bugs.is_empty() && report.degraded.iter().any(|d| d.stage == "frontend") {
            eprintln!(
                "bf4: {path}: {}",
                report.degraded.first().map(|d| d.error.as_str()).unwrap_or("frontend error")
            );
            std::process::exit(2);
        }
        (report, Some(stats))
    } else {
        match verify(&source, &options) {
            Ok(r) => (r, None),
            Err(e) => {
                eprintln!("bf4: {path}: {e}");
                std::process::exit(2);
            }
        }
    };

    println!(
        "{path}: {} bug(s) with all rules possible; {} after annotations; {} after fixes",
        report.bugs_total, report.bugs_after_infer, report.bugs_after_fixes
    );
    if !quiet {
        for bug in &report.bugs {
            println!(
                "  [{}] line {:>4} {:?} {}",
                bug.kind, bug.line, bug.status, bug.description
            );
        }
    }
    if report.keys_added > 0 {
        println!(
            "proposed fixes ({} key(s) across {} table(s)):",
            report.keys_added, report.tables_modified
        );
        print!("{}", report.fix_description);
    }
    if report.egress_spec_fix {
        println!("suggested fix: initialize egress_spec to drop at the start of ingress (§4.6)");
    }
    if report.bugs_undecided > 0 {
        println!(
            "warning: {} bug(s) undecided within the solver budget (counted as potential bugs)",
            report.bugs_undecided
        );
    }
    for d in &report.degraded {
        println!(
            "warning: stage `{}` degraded after {:?} ({} solver queries): {}",
            d.stage, d.duration, d.queries_used, d.error
        );
    }
    if let Some(stats) = &engine_stats {
        if !quiet {
            print!("{stats}");
        }
    }

    let text = report.annotations.to_string();
    match annotations_out {
        Some(f) => {
            if let Err(e) = std::fs::write(&f, &text) {
                eprintln!("bf4: cannot write {f}: {e}");
                std::process::exit(2);
            }
            println!(
                "wrote {} annotation(s) over {} table(s) to {f}",
                report.annotations.specs.len(),
                report.annotations.tables.len()
            );
        }
        None => {
            println!("--- controller annotations ---");
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(text.as_bytes());
        }
    }

    std::process::exit(if report.bugs_after_fixes == 0 { 0 } else { 1 });
}

fn dump_dot(source: &str, options: &VerifyOptions) -> Result<String, String> {
    let program = bf4_p4::frontend(source).map_err(|e| e.to_string())?;
    let (cfg, _) =
        bf4_core::driver::build_cfg(&program, options).map_err(|e| e.to_string())?;
    Ok(bf4_ir::cfg::to_dot(&cfg))
}
