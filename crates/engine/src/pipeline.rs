//! Decomposition of the bf4 pipeline into scheduler jobs.
//!
//! Per program: one **frontend** job (parse/typecheck), then per pipeline
//! part (ingress, plus egress under `include_egress`) a *chain* of rounds.
//! Each round is a **prepare** job (lower/SSA/optimize/slice + reachability
//! analysis), a fan-out of per-bug **reach** jobs (one SAT query each,
//! through the worker's cached solver), and a **finish** job (inference,
//! fixes, report assembly) that either completes the chain or spawns the
//! next round on the fixed program. Chains of one program and of different
//! programs all interleave freely across the worker pool.
//!
//! Failure semantics mirror [`bf4_core::driver::verify_isolated`]: a
//! frontend/lowering error yields a `frontend`-failed report, and a panic
//! anywhere in a chain yields a `pipeline`-failed report for that program
//! while every other program continues.

use crate::cache::CachedSolver;
use crate::scheduler::{JobId, Pool, WorkerCtx};
use crate::EngineConfig;
use bf4_core::driver::{
    finish_round, merge_reports, prepare_round, ReachInfo, Report, RoundPrep, RoundResult,
    RoundState, VerifyOptions,
};
use bf4_core::reach::{check_bugs, BugCheckStats, BugStatus};
use bf4_p4::typecheck::Program;
use bf4_smt::{new_solver, Solver};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Extract a printable message from a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// One program of the corpus being verified.
struct Prog {
    index: usize,
    name: String,
    source: String,
    config: EngineConfig,
    results: Arc<Mutex<Vec<Option<Report>>>>,
    started: Instant,
}

impl Prog {
    fn inject_panic(&self, stage: &str) {
        if let Some((p, s)) = &self.config.inject_panic {
            if p == &self.name && s == stage {
                panic!("injected panic in stage `{stage}` of `{p}`");
            }
        }
        // Chaos hook: same panic, driven by the seeded fault schedule
        // instead of an exact (program, stage) address. The guarded-job
        // machinery must degrade it to a `Report.degraded` entry.
        if bf4_obs::fault::fire("engine.job_panic") {
            panic!("injected fault: worker panic in stage `{stage}` of `{}`", self.name);
        }
    }
}

/// The per-part chains of one program and the merge of their reports.
struct ProgTask {
    prog: Arc<Prog>,
    remaining: AtomicUsize,
    /// Slot-ordered part results; the bool marks a failed (degraded-only)
    /// report that must replace — not merge into — the final report.
    parts: Mutex<Vec<Option<(Report, bool)>>>,
}

/// One pipeline part (ingress or egress) verified over rounds.
struct Chain {
    program: Arc<Program>,
    options: VerifyOptions,
    task: Arc<ProgTask>,
    slot: usize,
    state: Mutex<ChainState>,
}

#[derive(Default)]
struct ChainState {
    round: Option<RoundState>,
    prep: Option<RoundPrep>,
    stats: BugCheckStats,
    queries: u64,
    /// `(bug index, rendered error)` for undecided checks; the finish job
    /// deterministically reports the highest-index one, matching the
    /// sequential solver's "last error wins".
    details: Vec<(usize, String)>,
    reach_time: Duration,
    failed: Option<Report>,
    completed: bool,
}

fn lock(chain: &Chain) -> MutexGuard<'_, ChainState> {
    chain.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Open an engine-layer span for one scheduler job, tagged with the
/// program it belongs to and whether the job was stolen.
fn job_span(ctx: &WorkerCtx, name: &'static str, prog: &Prog) -> bf4_obs::Span {
    let mut sp = bf4_obs::span("engine", name);
    if sp.is_active() {
        sp.add_tag("program", prog.name.clone());
        if ctx.current_job_stolen() {
            sp.add_tag("stolen", "true");
        }
    }
    sp
}

/// Run `f`; a panic becomes this chain's `pipeline`-failed report (the
/// [`bf4_core::driver::verify_isolated`] semantics) and the worker solver
/// is rebuilt in case the panic left it mid-query.
fn guarded(ctx: &mut WorkerCtx, chain: &Arc<Chain>, f: impl FnOnce(&mut WorkerCtx)) {
    match catch_unwind(AssertUnwindSafe(|| f(ctx))) {
        Ok(()) => {}
        Err(payload) => {
            ctx.reset_solver();
            ctx.record_panic();
            let msg = panic_message(&*payload);
            bf4_obs::error(
                "engine",
                &format!("job panicked in `{}`: {msg}", chain.task.prog.name),
            );
            {
                let mut st = lock(chain);
                if st.failed.is_none() && !st.completed {
                    st.failed = Some(Report::failed(
                        "pipeline",
                        msg,
                        chain.task.prog.started.elapsed(),
                    ));
                }
            }
            complete_chain_failed(chain);
        }
    }
}

/// Spawn the whole job graph for one program onto the pool.
pub(crate) fn spawn_program(
    pool: &Pool,
    index: usize,
    name: String,
    source: String,
    options: &VerifyOptions,
    config: &EngineConfig,
    results: &Arc<Mutex<Vec<Option<Report>>>>,
) {
    let prog = Arc::new(Prog {
        index,
        name,
        source,
        config: config.clone(),
        results: results.clone(),
        started: Instant::now(),
    });
    let options = options.clone();
    pool.spawn(&[], move |ctx| frontend_job(ctx, prog, options));
}

fn frontend_job(ctx: &mut WorkerCtx, prog: Arc<Prog>, options: VerifyOptions) {
    let _sp = job_span(ctx, "frontend", &prog);
    let t0 = Instant::now();
    let parsed = catch_unwind(AssertUnwindSafe(|| {
        prog.inject_panic("frontend");
        bf4_p4::frontend(&prog.source)
    }));
    let report = match parsed {
        Ok(Ok(program)) => {
            let program = Arc::new(program);
            // One chain per pipeline part, exactly like the sequential
            // driver: ingress always, egress in separation when asked.
            let mut part_options = vec![VerifyOptions {
                include_egress: false,
                ..options.clone()
            }];
            if options.include_egress {
                let mut egress = options.clone();
                egress.lower.part = bf4_ir::lower::PipelinePart::Egress;
                egress.include_egress = false;
                part_options.push(egress);
            }
            let task = Arc::new(ProgTask {
                prog: prog.clone(),
                remaining: AtomicUsize::new(part_options.len()),
                parts: Mutex::new(vec![None; part_options.len()]),
            });
            for (slot, opts) in part_options.into_iter().enumerate() {
                let chain = Arc::new(Chain {
                    program: program.clone(),
                    options: opts,
                    task: task.clone(),
                    slot,
                    state: Mutex::new(ChainState::default()),
                });
                ctx.spawn(&[], move |ctx| round_job(ctx, chain));
            }
            None
        }
        Ok(Err(e)) => Some(Report::failed(
            "frontend",
            e.to_string(),
            prog.started.elapsed(),
        )),
        Err(payload) => Some(Report::failed(
            "pipeline",
            panic_message(&*payload),
            prog.started.elapsed(),
        )),
    };
    if let Some(report) = report {
        store_result(&prog, report);
    }
    ctx.record("frontend", t0);
}

/// Prepare one round and fan out its reachability checks.
fn round_job(ctx: &mut WorkerCtx, chain: Arc<Chain>) {
    let c = chain.clone();
    guarded(ctx, &c, move |ctx| {
        let _sp = job_span(ctx, "prepare", &chain.task.prog);
        let t0 = Instant::now();
        chain.task.prog.inject_panic("prepare");
        let mut round = {
            let mut st = lock(&chain);
            if st.round.is_none() {
                st.round = Some(RoundState::new(
                    &chain.program,
                    &chain.options,
                    &chain.task.prog.source,
                ));
            }
            st.round.take().expect("round state present")
        };
        match prepare_round(&round.program, &round.options) {
            Ok(prep) => {
                round.begin_round(&prep);
                let num_bugs = prep.bugs.len();
                {
                    let mut st = lock(&chain);
                    st.round = Some(round);
                    st.prep = Some(prep);
                }
                ctx.record("prepare", t0);
                let deps: Vec<JobId> = (0..num_bugs)
                    .map(|i| {
                        let c = chain.clone();
                        ctx.spawn(&[], move |ctx| bug_job(ctx, c, i))
                    })
                    .collect();
                let c = chain.clone();
                ctx.spawn(&deps, move |ctx| finish_job(ctx, c));
            }
            Err(e) => {
                {
                    let mut st = lock(&chain);
                    st.failed = Some(Report::failed(
                        "frontend",
                        e.to_string(),
                        chain.task.prog.started.elapsed(),
                    ));
                }
                complete_chain_failed(&chain);
                ctx.record("prepare", t0);
            }
        }
    });
}

/// One reachability query: check a single bug through the worker's cached
/// solver and fold the outcome into the chain.
fn bug_job(ctx: &mut WorkerCtx, chain: Arc<Chain>, i: usize) {
    let c = chain.clone();
    guarded(ctx, &c, move |ctx| {
        let _sp = job_span(ctx, "reach", &chain.task.prog);
        let t0 = Instant::now();
        let bug = {
            let st = lock(&chain);
            if st.failed.is_some() || st.completed {
                return;
            }
            st.prep.as_ref().expect("prep present").bugs[i].clone()
        };
        chain.task.prog.inject_panic("reach");
        let queries_before = ctx.solver.stats().queries;
        let mut slice = [bug];
        let (stats, detail) = {
            let mut cached = CachedSolver::borrowed(&mut ctx.solver, ctx.cache.clone());
            let stats = check_bugs(&mut cached, &mut slice, &[], BugStatus::Reachable);
            let detail = if stats.undecided > 0 {
                cached.last_error().map(|e| e.to_string())
            } else {
                None
            };
            (stats, detail)
        };
        let queries = ctx.solver.stats().queries - queries_before;
        let [bug] = slice;
        {
            let mut st = lock(&chain);
            if let Some(prep) = st.prep.as_mut() {
                prep.bugs[i] = bug;
            }
            st.stats.reachable += stats.reachable;
            st.stats.undecided += stats.undecided;
            st.queries += queries;
            if let Some(d) = detail {
                st.details.push((i, d));
            }
            st.reach_time += t0.elapsed();
        }
        ctx.record("reach", t0);
    });
}

/// Inference, fixes and report assembly for one round; either completes
/// the chain or spawns the next round on the fixed program.
fn finish_job(ctx: &mut WorkerCtx, chain: Arc<Chain>) {
    let c = chain.clone();
    guarded(ctx, &c, move |ctx| {
        let _sp = job_span(ctx, "finish", &chain.task.prog);
        let t0 = Instant::now();
        chain.task.prog.inject_panic("finish");
        let (mut round, prep, reach) = {
            let mut st = lock(&chain);
            if st.failed.is_some() || st.completed {
                drop(st);
                complete_chain_failed(&chain);
                return;
            }
            let round = st.round.take().expect("round state present");
            let prep = st.prep.take().expect("prep present");
            let mut details = std::mem::take(&mut st.details);
            details.sort_by_key(|d| d.0);
            let reach = ReachInfo {
                stats: std::mem::take(&mut st.stats),
                queries_used: std::mem::take(&mut st.queries),
                detail: details.pop().map(|d| d.1),
                duration: std::mem::take(&mut st.reach_time),
            };
            (round, prep, reach)
        };
        let solver_cfg = ctx.solver_cfg.clone();
        let cache = ctx.cache.clone();
        let factory = move || -> Box<dyn Solver> {
            Box::new(CachedSolver::owned(
                Box::new(new_solver(&solver_cfg)),
                cache.clone(),
            ))
        };
        let solver = factory();
        match finish_round(&mut round, prep, reach, solver, &factory) {
            RoundResult::Continue => {
                {
                    let mut st = lock(&chain);
                    st.round = Some(round);
                }
                let c = chain.clone();
                ctx.spawn(&[], move |ctx| round_job(ctx, c));
            }
            RoundResult::Done(report) => {
                complete_chain(&chain, *report, false);
            }
        }
        ctx.record("finish", t0);
    });
}

/// Complete the chain with the failure report recorded in its state (the
/// caller must have set one). No-op if the chain already completed.
fn complete_chain_failed(chain: &Arc<Chain>) {
    let report = {
        let mut st = lock(chain);
        if st.completed {
            return;
        }
        match st.failed.take() {
            Some(r) => {
                st.completed = true;
                r
            }
            None => return,
        }
    };
    finish_part(chain, report, true);
}

fn complete_chain(chain: &Arc<Chain>, report: Report, failed: bool) {
    {
        let mut st = lock(chain);
        if st.completed {
            return;
        }
        st.completed = true;
    }
    finish_part(chain, report, failed);
}

/// Record one part's report; the last part to finish merges and publishes
/// the program's final report.
fn finish_part(chain: &Arc<Chain>, report: Report, failed: bool) {
    let task = &chain.task;
    {
        let mut parts = task.parts.lock().unwrap_or_else(PoisonError::into_inner);
        parts[chain.slot] = Some((report, failed));
    }
    if task.remaining.fetch_sub(1, Ordering::AcqRel) != 1 {
        return;
    }
    let parts: Vec<(Report, bool)> = task
        .parts
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain(..)
        .map(|p| p.expect("all parts finished"))
        .collect();
    // Sequential `verify` bails out on the first failing part, so a failed
    // part's report (in slot order) *is* the program's report.
    let final_report = match parts.iter().position(|(_, f)| *f) {
        Some(i) => parts.into_iter().nth(i).expect("index in range").0,
        None => {
            let mut it = parts.into_iter();
            let (mut main, _) = it.next().expect("at least one part");
            for (other, _) in it {
                merge_reports(&mut main, other);
            }
            main.timings.total = task.prog.started.elapsed();
            main
        }
    };
    store_result(&task.prog, final_report);
}

fn store_result(prog: &Prog, report: Report) {
    let mut results = prog.results.lock().unwrap_or_else(PoisonError::into_inner);
    results[prog.index] = Some(report);
}
