//! Observability for the parallel engine: per-stage latency histograms,
//! cache counters, and the roll-up [`EngineStats`] printed by the report
//! binary.
//!
//! The histogram type itself lives in `bf4-obs` (it is shared with the
//! shim's latency stats and the global metrics registry) and is
//! re-exported here for compatibility.

use std::collections::BTreeMap;
use std::time::Duration;

pub use bf4_obs::Histogram;

/// Counters of the normalized SMT query cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Checks answered from the cache.
    pub hits: u64,
    /// Checks that went to a real solver.
    pub misses: u64,
    /// Results stored.
    pub insertions: u64,
    /// Entries dropped to stay under the capacity.
    pub evictions: u64,
    /// Entries resident when the stats were taken.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups, 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Everything one engine run can tell about itself.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs executed (including panicked ones).
    pub jobs_run: u64,
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
    /// Panics the scheduler backstop absorbed (pipeline jobs catch their
    /// own panics; nonzero here means a raw job escaped).
    pub panics: u64,
    /// Query-cache counters.
    pub cache: CacheStats,
    /// Per-stage latency histograms, keyed by stage name
    /// (`frontend`, `prepare`, `reach`, `finish`).
    pub stages: BTreeMap<String, Histogram>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl EngineStats {
    /// Fold per-worker stage histograms into this roll-up.
    pub fn merge_stages(&mut self, stages: &BTreeMap<String, Histogram>) {
        for (name, h) in stages {
            self.stages.entry(name.clone()).or_default().merge(h);
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "engine: {} worker(s), {} job(s), {} steal(s), {} panic(s), wall {:?}",
            self.workers, self.jobs_run, self.steals, self.panics, self.wall
        )?;
        writeln!(
            f,
            "cache: {} hit(s) / {} miss(es) ({:.1}% hit rate), {} insertion(s), {} eviction(s), {} resident",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.cache.insertions,
            self.cache.evictions,
            self.cache.entries
        )?;
        for (name, h) in &self.stages {
            writeln!(
                f,
                "stage {:<9} n={:<5} mean={:?} p90<={}us max={:?} total={:?}",
                name,
                h.count(),
                h.mean(),
                h.quantile_bound_micros(0.9),
                h.max(),
                h.total()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }
}
