//! Observability for the parallel engine: per-stage latency histograms,
//! cache counters, and the roll-up [`EngineStats`] printed by the report
//! binary.

use std::collections::BTreeMap;
use std::time::Duration;

/// A log2-bucketed latency histogram over microseconds: bucket `i` counts
/// samples with `2^i <= micros < 2^(i+1)` (bucket 0 also takes sub-µs
/// samples). 40 buckets cover up to ~12 days, far beyond any stage.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 40],
    count: u64,
    total_micros: u128,
    max_micros: u128,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 40],
            count: 0,
            total_micros: 0,
            max_micros: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        let micros = d.as_micros();
        let idx = (128 - u128::leading_zeros(micros.max(1)) - 1).min(39) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_micros += other.total_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn total(&self) -> Duration {
        Duration::from_micros(self.total_micros.min(u64::MAX as u128) as u64)
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.total_micros / self.count as u128) as u64)
    }

    /// Largest sample seen.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros.min(u64::MAX as u128) as u64)
    }

    /// Upper bound (exclusive, in µs) of the smallest bucket prefix holding
    /// at least `q` (0..=1) of the samples — a coarse quantile.
    pub fn quantile_bound_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1u64 << (i as u32 + 1).min(63);
            }
        }
        1u64 << 40
    }
}

/// Counters of the normalized SMT query cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Checks answered from the cache.
    pub hits: u64,
    /// Checks that went to a real solver.
    pub misses: u64,
    /// Results stored.
    pub insertions: u64,
    /// Entries dropped to stay under the capacity.
    pub evictions: u64,
    /// Entries resident when the stats were taken.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups, 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Everything one engine run can tell about itself.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs executed (including panicked ones).
    pub jobs_run: u64,
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
    /// Panics the scheduler backstop absorbed (pipeline jobs catch their
    /// own panics; nonzero here means a raw job escaped).
    pub panics: u64,
    /// Query-cache counters.
    pub cache: CacheStats,
    /// Per-stage latency histograms, keyed by stage name
    /// (`frontend`, `prepare`, `reach`, `finish`).
    pub stages: BTreeMap<String, Histogram>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl EngineStats {
    /// Fold per-worker stage histograms into this roll-up.
    pub fn merge_stages(&mut self, stages: &BTreeMap<String, Histogram>) {
        for (name, h) in stages {
            self.stages.entry(name.clone()).or_default().merge(h);
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "engine: {} worker(s), {} job(s), {} steal(s), {} panic(s), wall {:?}",
            self.workers, self.jobs_run, self.steals, self.panics, self.wall
        )?;
        writeln!(
            f,
            "cache: {} hit(s) / {} miss(es) ({:.1}% hit rate), {} insertion(s), {} eviction(s), {} resident",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.cache.insertions,
            self.cache.evictions,
            self.cache.entries
        )?;
        for (name, h) in &self.stages {
            writeln!(
                f,
                "stage {:<9} n={:<5} mean={:?} p90<={}us max={:?} total={:?}",
                name,
                h.count(),
                h.mean(),
                h.quantile_bound_micros(0.9),
                h.max(),
                h.total()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(5));
        h.record(Duration::from_micros(1000));
        assert_eq!(h.count(), 3);
        assert_eq!(h.total(), Duration::from_micros(1008));
        assert_eq!(h.mean(), Duration::from_micros(336));
        assert_eq!(h.max(), Duration::from_micros(1000));
        // Two of three samples are <= 8us.
        assert!(h.quantile_bound_micros(0.5) <= 8);
        let mut h2 = Histogram::default();
        h2.record(Duration::from_micros(7));
        h.merge(&h2);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }
}
