//! Observability for the parallel engine: per-stage latency histograms,
//! cache counters, and the roll-up [`EngineStats`] printed by the report
//! binary.
//!
//! The histogram type itself lives in `bf4-obs` (it is shared with the
//! shim's latency stats and the global metrics registry) and is
//! re-exported here for compatibility.

use std::collections::BTreeMap;
use std::time::Duration;

pub use bf4_obs::Histogram;

/// Counters of the normalized SMT query cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Checks answered from the cache. A lookup answered from the cache
    /// counts as a hit whether the entry was computed this session or
    /// warm-started from a persistent store — `warm_hits` breaks out the
    /// latter, `preloaded` counts entries loaded (not lookups).
    pub hits: u64,
    /// The subset of `hits` answered by an entry warm-started from a
    /// persistent store (not yet recomputed this session).
    pub warm_hits: u64,
    /// Checks that went to a real solver.
    pub misses: u64,
    /// Results stored.
    pub insertions: u64,
    /// Entries dropped to stay under the capacity.
    pub evictions: u64,
    /// Entries resident when the stats were taken.
    pub entries: usize,
    /// Entries warm-started from a persistent store.
    pub preloaded: u64,
    /// Persisted records dropped on load because a checksum, key or
    /// payload failed validation. They are never returned as verdicts.
    pub corrupt_records: u64,
}

impl CacheStats {
    /// Hits over total lookups, 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What the persistent cache store did over one run: the warm-start
/// outcome plus, when `--cache-persist` is on, the save outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Valid entries warm-started from disk.
    pub loaded: u64,
    /// Persisted lines dropped for failing checksum/syntax validation.
    pub corrupt_records: u64,
    /// Store files rejected wholesale (bad header, schema-fingerprint
    /// mismatch, generation mismatch).
    pub stale_files: u64,
    /// Store generation after the run.
    pub generation: u64,
    /// Whether a save ran and succeeded.
    pub saved: bool,
    /// Entries appended to the log by the save (0 when it compacted).
    pub appended: u64,
    /// Whether the save compacted into a fresh snapshot.
    pub compacted: bool,
    /// Open/save failures absorbed (run continues, cold or unsaved).
    pub io_errors: u64,
}

impl PersistStats {
    /// Stats describing a completed warm-start load.
    pub fn from_load(load: &crate::persist::LoadReport) -> PersistStats {
        PersistStats {
            loaded: load.loaded,
            corrupt_records: load.corrupt_records,
            stale_files: load.stale_files,
            generation: load.generation,
            ..PersistStats::default()
        }
    }

    /// Fold a completed save into the stats.
    pub fn note_save(&mut self, saved: &crate::persist::SaveReport) {
        self.saved = true;
        self.generation = saved.generation;
        self.appended = saved.appended;
        self.compacted = saved.compacted;
    }
}

/// Everything one engine run can tell about itself.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs executed (including panicked ones).
    pub jobs_run: u64,
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
    /// Panics the scheduler backstop absorbed (pipeline jobs catch their
    /// own panics; nonzero here means a raw job escaped).
    pub panics: u64,
    /// Query-cache counters.
    pub cache: CacheStats,
    /// Persistent-store outcome, when a `--cache-dir` was configured.
    pub persist: Option<PersistStats>,
    /// Per-stage latency histograms, keyed by stage name
    /// (`frontend`, `prepare`, `reach`, `finish`).
    pub stages: BTreeMap<String, Histogram>,
    /// Run-wide metrics counter delta when metrics were enabled: the
    /// global registry snapshotted before the run and after every worker
    /// joined, so per-worker updates are merged before the subtraction.
    pub obs_metrics: Option<bf4_obs::MetricsSnapshot>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl EngineStats {
    /// Fold per-worker stage histograms into this roll-up.
    pub fn merge_stages(&mut self, stages: &BTreeMap<String, Histogram>) {
        for (name, h) in stages {
            self.stages.entry(name.clone()).or_default().merge(h);
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "engine: {} worker(s), {} job(s), {} steal(s), {} panic(s), wall {:?}",
            self.workers, self.jobs_run, self.steals, self.panics, self.wall
        )?;
        writeln!(
            f,
            "cache: {} hit(s) [{} warm] / {} miss(es) ({:.1}% hit rate), {} insertion(s), {} eviction(s), {} resident",
            self.cache.hits,
            self.cache.warm_hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.cache.insertions,
            self.cache.evictions,
            self.cache.entries
        )?;
        if let Some(p) = &self.persist {
            writeln!(
                f,
                "cache store: gen {} — {} loaded, {} corrupt dropped, {} stale file(s), \
                 saved={} ({}{}), {} io error(s)",
                p.generation,
                p.loaded,
                p.corrupt_records,
                p.stale_files,
                p.saved,
                if p.compacted { "compacted" } else { "appended " },
                if p.compacted {
                    String::new()
                } else {
                    format!("{}", p.appended)
                },
                p.io_errors
            )?;
        }
        for (name, h) in &self.stages {
            writeln!(
                f,
                "stage {:<9} n={:<5} mean={:?} p90<={}us max={:?} total={:?}",
                name,
                h.count(),
                h.mean(),
                h.quantile_bound_micros(0.9),
                h.max(),
                h.total()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }
}
