//! Integration tests for the parallel engine: differential equivalence
//! against the sequential driver, panic isolation, and cache eviction
//! under a tiny capacity — all through the public `verify_corpus` API.

use bf4_core::driver::VerifyOptions;
use bf4_engine::{normalized_report as normalize, verify_corpus, EngineConfig};

fn subset() -> Vec<(String, String)> {
    // A slice of the Table-1 corpus that covers fixable programs,
    // genuine dataplane bugs, and the egress-spec special fix, while
    // keeping the debug-profile runtime reasonable.
    ["arp", "heavy_hitter_1", "issue894", "flowlet"]
        .iter()
        .map(|n| {
            let p = bf4_corpus::by_name(n).expect("corpus program present");
            (p.name.to_string(), p.source.to_string())
        })
        .collect()
}

#[test]
fn parallel_reports_match_sequential_reports() {
    let programs = subset();
    assert!(programs.len() >= 2, "corpus subset unexpectedly empty");
    let options = VerifyOptions::default();

    let sequential = EngineConfig::default();
    let (seq_reports, seq_stats) = verify_corpus(&programs, &options, &sequential);
    assert_eq!(seq_stats.workers, 1);

    let parallel = EngineConfig {
        jobs: 3,
        cache_cap: 4096,
        ..EngineConfig::default()
    };
    let (par_reports, par_stats) = verify_corpus(&programs, &options, &parallel);
    assert_eq!(par_stats.workers, 3);
    assert!(par_stats.jobs_run > programs.len() as u64);

    assert_eq!(seq_reports.len(), par_reports.len());
    for (i, (name, _)) in programs.iter().enumerate() {
        assert_eq!(
            normalize(name, &seq_reports[i]),
            normalize(name, &par_reports[i]),
            "parallel report for {name} diverged from sequential"
        );
    }
}

#[test]
fn cache_reuse_across_identical_programs() {
    // The same program twice: the second run's reachability queries are
    // canonical-identical to the first's, so the cache must hit.
    let prog = bf4_corpus::by_name("arp").expect("corpus program present");
    let programs = vec![
        ("first".to_string(), prog.source.to_string()),
        ("second".to_string(), prog.source.to_string()),
    ];
    let config = EngineConfig {
        jobs: 2,
        cache_cap: 4096,
        ..EngineConfig::default()
    };
    let (reports, stats) = verify_corpus(&programs, &VerifyOptions::default(), &config);
    assert_eq!(
        normalize("p", &reports[0]),
        normalize("p", &reports[1]),
        "identical sources must produce identical reports"
    );
    assert!(
        stats.cache.hits > 0,
        "expected cross-program cache hits, got {:?}",
        stats.cache
    );
}

#[test]
fn panicking_job_degrades_one_program_without_wedging_the_pool() {
    let programs = subset();
    let victim = programs[1].0.clone();
    let options = VerifyOptions::default();

    let clean = EngineConfig {
        jobs: 2,
        cache_cap: 0,
        ..EngineConfig::default()
    };
    let (clean_reports, _) = verify_corpus(&programs, &options, &clean);

    for stage in ["prepare", "reach", "finish"] {
        let config = EngineConfig {
            jobs: 2,
            cache_cap: 0,
            inject_panic: Some((victim.clone(), stage.to_string())),
            ..EngineConfig::default()
        };
        let (reports, stats) = verify_corpus(&programs, &options, &config);
        assert_eq!(reports.len(), programs.len());

        // The victim degrades through the StageFailure path...
        let r = &reports[1];
        assert!(
            r.degraded.iter().any(|d| d.stage == "pipeline"),
            "stage {stage}: victim should carry a `pipeline` StageFailure, got {:?}",
            r.degraded
        );
        // Concurrent in-flight jobs of the victim may also hit the
        // injection before the chain is marked failed, so >= 1.
        assert!(stats.panics >= 1, "stage {stage}: panic not recorded");

        // ...and every other program is untouched.
        for (i, (name, _)) in programs.iter().enumerate() {
            if i == 1 {
                continue;
            }
            assert_eq!(
                normalize(name, &clean_reports[i]),
                normalize(name, &reports[i]),
                "stage {stage}: bystander {name} affected by the panic"
            );
        }
    }
}

#[test]
fn tiny_cache_capacity_evicts_but_stays_correct() {
    let programs = subset();
    let options = VerifyOptions::default();

    let (baseline, _) = verify_corpus(&programs, &options, &EngineConfig::default());
    let config = EngineConfig {
        jobs: 2,
        cache_cap: 2,
        ..EngineConfig::default()
    };
    let (reports, stats) = verify_corpus(&programs, &options, &config);

    assert!(
        stats.cache.evictions > 0,
        "a 2-entry cache over a corpus run must evict, got {:?}",
        stats.cache
    );
    assert!(stats.cache.entries <= 2);
    for (i, (name, _)) in programs.iter().enumerate() {
        assert_eq!(
            normalize(name, &baseline[i]),
            normalize(name, &reports[i]),
            "eviction changed the report for {name}"
        );
    }
}

#[test]
fn solver_modes_produce_identical_reports() {
    // The differential contract behind `--solver-mode`: oneshot,
    // incremental and portfolio backends must yield byte-identical
    // normalized reports on the same corpus slice. Run incremental with
    // jobs > 1 so worker-held contexts survive across programs and the
    // reset path is exercised, not just the happy path.
    let programs = subset();
    let options = VerifyOptions::default();
    let config = EngineConfig::default();
    let (base_reports, _) = verify_corpus(&programs, &options, &config);
    let baseline: Vec<String> = programs
        .iter()
        .zip(&base_reports)
        .map(|((name, _), r)| normalize(name, r))
        .collect();

    for mode in [
        bf4_smt::SolverMode::Incremental,
        bf4_smt::SolverMode::Portfolio,
    ] {
        let mut options = VerifyOptions::default();
        options.solver.mode = mode;
        for jobs in [1, 3] {
            let config = EngineConfig {
                jobs,
                ..EngineConfig::default()
            };
            let (reports, _) = verify_corpus(&programs, &options, &config);
            for (i, (name, _)) in programs.iter().enumerate() {
                assert_eq!(
                    baseline[i],
                    normalize(name, &reports[i]),
                    "{mode:?} report for {name} (jobs={jobs}) diverged from oneshot"
                );
            }
        }
    }
}
