//! Chaos suite: seeded fault schedules across the pipeline, asserting the
//! verdicts-never-flip invariant.
//!
//! Each test runs a corpus subset fault-free, re-runs it under an armed
//! [`bf4_obs::FaultPlan`], and applies [`check_conservative`]: every
//! program's report must be byte-identical to the clean run or degraded
//! toward `Undecided`/`Report.degraded` — a fault may cost confidence,
//! never manufacture it.
//!
//! Own integration-test binary (the fault plan is process-global), with
//! every test serialized on one lock.

use bf4_core::driver::{Report, VerifyOptions};
use bf4_engine::{check_conservative, normalized_report, verify_corpus, EngineConfig};
use bf4_obs::FaultPlan;
use std::sync::{Mutex, MutexGuard, PoisonError};

fn locked() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn subset() -> Vec<(String, String)> {
    ["arp", "heavy_hitter_1", "issue894", "flowlet"]
        .iter()
        .map(|n| {
            let p = bf4_corpus::by_name(n).expect("corpus program present");
            (p.name.to_string(), p.source.to_string())
        })
        .collect()
}

fn run(programs: &[(String, String)], config: &EngineConfig) -> Vec<Report> {
    verify_corpus(programs, &VerifyOptions::default(), config).0
}

/// The standard chaos schedule: solver failures, worker panics and
/// scheduler wedges, all probabilistic under one seed.
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::parse(&format!(
        "seed={seed},smt.backend_error=p0.05,smt.timeout=p0.05,\
         engine.job_panic=p0.02,engine.queue_wedge=p0.1"
    ))
    .expect("chaos plan parses")
}

#[test]
fn seeded_schedules_only_degrade_conservatively() {
    let _g = locked();
    let programs = subset();
    let config = EngineConfig {
        jobs: 2,
        cache_cap: 4096,
        ..EngineConfig::default()
    };
    let base = run(&programs, &config);

    for seed in [11, 23, 37] {
        bf4_obs::fault::install(plan(seed));
        let faulty = run(&programs, &config);
        let stats = bf4_obs::fault::clear();
        let fires: u64 = stats.iter().map(|s| s.fires).sum();
        assert!(
            fires > 0,
            "seed {seed}: the schedule never fired — the run proved nothing"
        );
        for (i, (name, _)) in programs.iter().enumerate() {
            check_conservative(&base[i], &faulty[i]).unwrap_or_else(|e| {
                panic!("seed {seed}, program {name}: verdict flip under faults: {e}")
            });
        }
    }
}

#[test]
fn same_seed_replays_the_same_chaos_run() {
    let _g = locked();
    let programs = subset();
    // One worker: hit order is deterministic, so the whole injected
    // schedule — and with it every report — must replay exactly.
    let config = EngineConfig {
        jobs: 1,
        cache_cap: 4096,
        ..EngineConfig::default()
    };
    let mut runs = Vec::new();
    for _ in 0..2 {
        bf4_obs::fault::install(plan(23));
        let reports = run(&programs, &config);
        let stats = bf4_obs::fault::clear();
        let rendered: Vec<String> = programs
            .iter()
            .zip(&reports)
            .map(|((name, _), r)| normalized_report(name, r))
            .collect();
        let fires: Vec<(String, u64, u64)> = stats
            .into_iter()
            .map(|s| (s.site, s.hits, s.fires))
            .collect();
        runs.push((rendered, fires));
    }
    assert_eq!(
        runs[0], runs[1],
        "same seed + one worker must replay reports and fire counts exactly"
    );
}

#[test]
fn scheduler_wedges_change_nothing_at_all() {
    let _g = locked();
    let programs = subset();
    let config = EngineConfig {
        jobs: 3,
        cache_cap: 4096,
        ..EngineConfig::default()
    };
    let base = run(&programs, &config);
    // Wedges only perturb timing/stealing; determinism promises verdicts
    // are schedule-independent, so reports must be byte-identical.
    bf4_obs::fault::install(FaultPlan::parse("seed=7,engine.queue_wedge=%2").unwrap());
    let wedged = run(&programs, &config);
    let stats = bf4_obs::fault::clear();
    assert!(
        stats.iter().any(|s| s.site == "engine.queue_wedge" && s.fires > 0),
        "wedges must actually have fired"
    );
    for (i, (name, _)) in programs.iter().enumerate() {
        assert_eq!(
            normalized_report(name, &base[i]),
            normalized_report(name, &wedged[i]),
            "{name}: a pure scheduling perturbation changed the report"
        );
    }
}

#[test]
fn cache_persistence_faults_never_flip_verdicts() {
    let _g = locked();
    let programs = subset();
    let dir = std::env::temp_dir().join(format!("bf4-chaos-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base = run(
        &programs,
        &EngineConfig {
            jobs: 2,
            cache_cap: 4096,
            ..EngineConfig::default()
        },
    );

    // Warm the store, then reload it under injected load corruption and
    // an injected save failure: verdicts must match the clean run
    // exactly (cache damage costs misses, not answers).
    let persist = EngineConfig {
        jobs: 2,
        cache_cap: 4096,
        cache_dir: Some(dir.clone()),
        cache_persist: true,
        ..EngineConfig::default()
    };
    let (warm_reports, _) = verify_corpus(&programs, &VerifyOptions::default(), &persist);
    for (i, (name, _)) in programs.iter().enumerate() {
        assert_eq!(
            normalized_report(name, &base[i]),
            normalized_report(name, &warm_reports[i]),
            "{name}: enabling persistence changed the report"
        );
    }

    bf4_obs::fault::install(
        FaultPlan::parse("seed=3,cache.load_corrupt=on,cache.persist_io=@1").unwrap(),
    );
    let (faulty_reports, stats) =
        verify_corpus(&programs, &VerifyOptions::default(), &persist);
    let fault_stats = bf4_obs::fault::clear();
    assert!(
        fault_stats.iter().any(|s| s.site == "cache.load_corrupt" && s.fires > 0),
        "load corruption must have fired"
    );
    let p = stats.persist.expect("persistence was configured");
    assert!(
        p.io_errors > 0,
        "the injected save failure must be absorbed into io_errors, got {p:?}"
    );
    for (i, (name, _)) in programs.iter().enumerate() {
        assert_eq!(
            normalized_report(name, &base[i]),
            normalized_report(name, &faulty_reports[i]),
            "{name}: cache corruption/IO faults changed a verdict"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
