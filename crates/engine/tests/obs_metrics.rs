//! `Report::obs_metrics` under `--jobs N`: the engine's joined-pool
//! before/after delta must tell the same story as the sequential
//! driver's. Deterministic counters (solver queries, engine jobs) agree
//! exactly; cache-dependent counters only appear where a cache exists.
//!
//! Metrics are process-global, so this differential lives in its own
//! test binary — test binaries run one at a time, and both tests here
//! serialize on one gate — keeping other suites' counter activity out of
//! the deltas.

use bf4_core::driver::{verify_isolated, VerifyOptions};
use bf4_engine::{verify_corpus, EngineConfig};
use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn parallel_single_program_delta_matches_sequential() {
    let _g = lock();
    let prog = bf4_corpus::by_name("arp").expect("corpus program present");
    let options = VerifyOptions::default();

    bf4_obs::set_metrics(true);
    bf4_obs::reset_metrics();
    let seq_report = verify_isolated(prog.source, &options);
    let seq = seq_report
        .obs_metrics
        .clone()
        .expect("sequential run records a metrics delta");

    bf4_obs::reset_metrics();
    // Cache off: a cache would legitimately answer repeat queries and
    // change `smt.queries`; with it off, both paths solve every query.
    let parallel = EngineConfig {
        jobs: 4,
        cache_cap: 0,
        ..EngineConfig::default()
    };
    let (reports, stats) =
        verify_corpus(&[(prog.name.to_string(), prog.source.to_string())], &options, &parallel);
    bf4_obs::set_metrics(false);
    let par = reports[0]
        .obs_metrics
        .clone()
        .expect("single-program parallel run records a metrics delta");
    assert_eq!(
        stats.obs_metrics.as_ref().map(|m| &m.counters),
        Some(&par.counters),
        "run-wide and per-report deltas must agree for one program"
    );

    // The solver workload is identical, merely sharded across workers:
    // the merged per-worker counters must reproduce the sequential
    // counts exactly.
    for key in ["smt.queries", "smt.budget_exhausted", "smt.fallbacks"] {
        assert_eq!(
            par.counters.get(key),
            seq.counters.get(key),
            "{key} diverged between sequential and --jobs 4"
        );
    }
    // And the engine layer must actually have run parallel jobs — i.e.
    // this delta really merged multiple workers' updates.
    assert!(par.counters.get("engine.jobs").copied().unwrap_or(0) > 1);
    assert!(!seq.counters.contains_key("engine.jobs"));
    bf4_obs::reset_metrics();
}

#[test]
fn multi_program_corpus_keeps_per_report_metrics_unset() {
    let _g = lock();
    let programs: Vec<(String, String)> = ["arp", "issue894"]
        .iter()
        .map(|n| {
            let p = bf4_corpus::by_name(n).expect("corpus program present");
            (p.name.to_string(), p.source.to_string())
        })
        .collect();
    bf4_obs::set_metrics(true);
    bf4_obs::reset_metrics();
    let config = EngineConfig {
        jobs: 2,
        cache_cap: 4096,
        ..EngineConfig::default()
    };
    let (reports, stats) = verify_corpus(&programs, &VerifyOptions::default(), &config);
    bf4_obs::set_metrics(false);
    // Overlapping programs cannot be attributed individually; the
    // roll-up still carries the whole run.
    for r in &reports {
        assert!(r.obs_metrics.is_none());
    }
    let rollup = stats.obs_metrics.expect("run-wide delta present");
    assert!(rollup.counters.get("smt.queries").copied().unwrap_or(0) > 0);
    bf4_obs::reset_metrics();
}
