//! Satellite: property test of the cache-poisoning defenses.
//!
//! For arbitrary cache contents and an arbitrary single-byte mutation of
//! the persisted store — hitting a key, a payload verdict, or a checksum,
//! wherever the byte lands — the load must drop the damaged record,
//! count it in `cache_corrupt_records`, and return every *other* record
//! with its original verdict. A mutated record may disappear; it may
//! never come back altered.

use bf4_engine::{QueryCache, Store};
use bf4_smt::SatResult;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "bf4-persist-props-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// xorshift64*: enough randomness to derive keys/verdicts from one seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mutated_record_is_dropped_never_returned_altered(seed: u64, flip_bit in 0u8..8) {
        let dir = scratch();
        let mut rng = Rng(seed);
        let n = 8 + (rng.next() % 56) as usize;
        let mut original: HashMap<u128, SatResult> = HashMap::new();
        let cache = QueryCache::new(4096);
        while original.len() < n {
            let key = ((rng.next() as u128) << 64) | rng.next() as u128;
            let verdict = if rng.next().is_multiple_of(2) { SatResult::Sat } else { SatResult::Unsat };
            if key != 0 && original.insert(key, verdict).is_none() {
                cache.insert(key, verdict);
            }
        }
        let (mut store, _) = Store::open(&dir, &cache).unwrap();
        store.save(&cache).unwrap();

        // Flip one bit somewhere in the snapshot, header included.
        let snap = dir.join("snap-1.bf4q");
        let mut bytes = std::fs::read(&snap).unwrap();
        let pos = (rng.next() % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << flip_bit;
        std::fs::write(&snap, &bytes).unwrap();

        let warm = QueryCache::new(4096);
        let (_, load) = Store::open(&dir, &warm).unwrap();
        let loaded = warm.all_entries();

        // Whatever was hit: every loaded verdict must match the original.
        for (key, verdict) in &loaded {
            prop_assert_eq!(
                original.get(key).copied(),
                Some(*verdict),
                "a mutated record was returned as a verdict"
            );
        }
        if load.stale_files > 0 {
            // The bit landed in the header: the file is rejected wholesale.
            prop_assert_eq!(loaded.len(), 0);
        } else {
            // The bit landed in (or created) a record line: the damaged
            // line is gone and counted. A flip that destroys a newline
            // merges two records into one corrupt line, so each counted
            // corruption accounts for at most two lost records.
            prop_assert!(loaded.len() < original.len());
            prop_assert!(load.corrupt_records >= 1);
            prop_assert_eq!(warm.stats().corrupt_records, load.corrupt_records);
            prop_assert!(
                loaded.len() + 2 * load.corrupt_records as usize >= original.len()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
