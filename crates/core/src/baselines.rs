//! Baselines from §5.2: approximations of p4v and Vera used for the
//! experimental comparison.
//!
//! * **p4v approximation** — as the paper does for its own comparison:
//!   combine the weakest preconditions of *all* bugs into one disjunction
//!   and run a single solver query that reports whether any bug is
//!   reachable. p4v is human-in-the-loop: after each report the operator
//!   adds a manual assertion and re-runs; we expose that loop so the
//!   benchmark can measure per-iteration cost.
//! * **Vera approximation** — symbolic execution of a *concrete snapshot*:
//!   table contents are fixed rule lists instead of havoc'd entries, and
//!   the engine enumerates packet paths, reporting each path that reaches
//!   a bug. Running it with symbolic (havoc'd) entries shows the coverage
//!   collapse §5.2 describes.

use crate::reach::ReachAnalysis;
use bf4_ir::{BlockId, BlockKind, Cfg, Instr, Terminator};
use bf4_smt::{SatResult, Solver, Term};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of the p4v-style monolithic query.
#[derive(Clone, Debug)]
pub struct P4vResult {
    /// Whether any bug is reachable.
    pub any_bug: bool,
    /// Query time (single solver call over the combined formula).
    pub query_time: Duration,
    /// Number of bug disjuncts combined.
    pub bug_count: usize,
}

/// Run the p4v approximation on an analyzed CFG: one combined reachability
/// query for all bugs. `blocked` carries the manual assertions an operator
/// would add between iterations (terms over control variables).
pub fn p4v_check(cfg: &Cfg, blocked: &[Term]) -> P4vResult {
    let ra = ReachAnalysis::new(cfg);
    let bugs = ra.found_bugs(cfg);
    let combined = Term::or_all(bugs.iter().map(|b| b.cond.clone()).collect::<Vec<_>>());
    let t0 = Instant::now();
    let mut solver = bf4_smt::default_solver();
    solver.assert(&combined);
    for b in blocked {
        solver.assert(b);
    }
    let any_bug = solver.check() != SatResult::Unsat;
    P4vResult {
        any_bug,
        query_time: t0.elapsed(),
        bug_count: bugs.len(),
    }
}

/// A concrete table entry for the Vera-style snapshot.
#[derive(Clone, Debug)]
pub struct SnapshotEntry {
    /// Key values in key order.
    pub key_values: Vec<u128>,
    /// Masks (all-ones for exact keys).
    pub key_masks: Vec<u128>,
    /// Action index (into the table site's action list).
    pub action: usize,
    /// Action data in parameter order.
    pub params: Vec<u128>,
}

/// A concrete snapshot: rules per table name.
pub type Snapshot = HashMap<String, Vec<SnapshotEntry>>;

/// Result of the Vera-style exploration.
#[derive(Clone, Debug)]
pub struct VeraResult {
    /// Paths explored.
    pub paths: usize,
    /// Bug blocks hit, with one satisfying packet model each.
    pub bugs_hit: Vec<BlockId>,
    /// Wall time.
    pub time: Duration,
    /// True if the exploration hit its path budget before finishing —
    /// the coverage collapse the paper reports for symbolic entries.
    pub exhausted_budget: bool,
}

/// Symbolic execution in the style of Vera.
///
/// With `snapshot` given, each table's entry variables are constrained to
/// the concrete rules (plus a default-miss alternative); without it,
/// entries stay fully symbolic and the path count explodes. `max_paths`
/// bounds the exploration.
pub fn vera_explore(cfg: &Cfg, snapshot: Option<&Snapshot>, max_paths: usize) -> VeraResult {
    let t0 = Instant::now();
    // Constrain table-entry variables per the snapshot.
    let mut entry_constraints: Vec<Term> = Vec::new();
    if let Some(snap) = snapshot {
        for site in &cfg.tables {
            let rules = snap.get(&site.table).cloned().unwrap_or_default();
            let hit = Term::var(site.hit_var.clone(), bf4_smt::Sort::Bool);
            let action = Term::var(site.action_var.clone(), bf4_smt::Sort::Bv(8));
            let mut rule_alts: Vec<Term> = Vec::new();
            for r in &rules {
                let mut parts = vec![action.eq_term(&Term::bv(8, r.action as u128))];
                for (i, k) in site.keys.iter().enumerate() {
                    let sort = k.expr.sort();
                    let vterm = Term::var(k.value_var.clone(), sort);
                    let val = match sort {
                        bf4_smt::Sort::Bool => Term::bool(r.key_values[i] != 0),
                        bf4_smt::Sort::Bv(w) => Term::bv(w, r.key_values[i]),
                    };
                    parts.push(vterm.eq_term(&val));
                    if let Some(mv) = &k.mask_var {
                        if let bf4_smt::Sort::Bv(w) = sort {
                            let mterm = Term::var(mv.clone(), sort);
                            parts.push(mterm.eq_term(&Term::bv(w, r.key_masks[i])));
                        }
                    }
                }
                let mut pi = 0;
                for a in &site.actions {
                    if a.name == site.actions[r.action].name {
                        for (pv, psort) in &a.param_vars {
                            let val = r.params.get(pi).copied().unwrap_or(0);
                            pi += 1;
                            let term = Term::var(pv.clone(), *psort);
                            let v = match psort {
                                bf4_smt::Sort::Bool => Term::bool(val != 0),
                                bf4_smt::Sort::Bv(w) => Term::bv(*w, val),
                            };
                            parts.push(term.eq_term(&v));
                        }
                    }
                }
                rule_alts.push(Term::and_all(parts));
            }
            let hit_case = if rule_alts.is_empty() {
                hit.not()
            } else {
                hit.implies(&Term::or_all(rule_alts))
            };
            entry_constraints.push(hit_case);
        }
    }

    let mut solver = bf4_smt::default_solver();
    for c in &entry_constraints {
        solver.assert(c);
    }

    // Path enumeration: DFS accumulating path conditions, checking
    // feasibility at branches (the Vera strategy).
    struct Frame {
        block: BlockId,
        conds: Vec<Term>,
    }
    let mut paths = 0usize;
    let mut bugs_hit = Vec::new();
    let mut exhausted = false;
    let mut stack = vec![Frame {
        block: cfg.entry,
        conds: Vec::new(),
    }];
    while let Some(frame) = stack.pop() {
        if paths >= max_paths {
            exhausted = true;
            break;
        }
        // Equalities from this block's instructions join the path state.
        let mut conds = frame.conds;
        for ins in &cfg.blocks[frame.block].instrs {
            if let Instr::Assign { var, sort, expr } = ins {
                conds.push(Term::var(var.clone(), *sort).eq_term(expr));
            }
        }
        match &cfg.blocks[frame.block].term {
            Terminator::End => {
                paths += 1;
                if matches!(cfg.blocks[frame.block].kind, BlockKind::Bug(_)) {
                    let pc = Term::and_all(conds.clone());
                    solver.push();
                    solver.assert(&pc);
                    if solver.check() == SatResult::Sat {
                        bugs_hit.push(frame.block);
                    }
                    solver.pop();
                }
            }
            Terminator::Jump(t) => {
                stack.push(Frame {
                    block: *t,
                    conds,
                });
            }
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                // Feasibility pruning per side.
                for (side_cond, target) in
                    [(cond.clone(), *then_to), (cond.not(), *else_to)]
                {
                    let mut c2 = conds.clone();
                    c2.push(side_cond);
                    let pc = Term::and_all(c2.clone());
                    solver.push();
                    solver.assert(&pc);
                    let feasible = solver.check() == SatResult::Sat;
                    solver.pop();
                    if feasible {
                        stack.push(Frame {
                            block: target,
                            conds: c2,
                        });
                    }
                }
            }
        }
    }
    bugs_hit.sort_unstable();
    bugs_hit.dedup();
    VeraResult {
        paths,
        bugs_hit,
        time: t0.elapsed(),
        exhausted_budget: exhausted,
    }
}

/// Convenience: a snapshot with one benign rule per table (used by tests
/// and the benchmark harness).
pub fn benign_snapshot(cfg: &Cfg) -> Snapshot {
    let mut snap = Snapshot::new();
    for site in &cfg.tables {
        let key_values: Vec<u128> = site
            .keys
            .iter()
            .map(|k| match k.expr.sort() {
                bf4_smt::Sort::Bool => 1,
                _ => 1,
            })
            .collect();
        let key_masks: Vec<u128> = site.keys.iter().map(|_| u128::MAX >> 64).collect();
        snap.insert(
            site.table.clone(),
            vec![SnapshotEntry {
                key_values,
                key_masks,
                action: site.default_action,
                params: vec![0; 8],
            }],
        );
    }
    snap
}

/// Strip helper used by benches: variable names of a site.
pub fn site_vars(cfg: &Cfg) -> Vec<Arc<str>> {
    cfg.tables.iter().flat_map(|t| t.control_vars()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{build_cfg, VerifyOptions};
    use crate::testutil::NAT_SOURCE;

    fn nat_cfg() -> Cfg {
        let program = bf4_p4::frontend(NAT_SOURCE).unwrap();
        build_cfg(&program, &VerifyOptions::default()).unwrap().0
    }

    #[test]
    fn p4v_monolithic_query_finds_bugs() {
        let cfg = nat_cfg();
        let res = p4v_check(&cfg, &[]);
        assert!(res.any_bug);
        assert!(res.bug_count >= 3);
    }

    #[test]
    fn p4v_with_blocking_assertions_converges() {
        // Feeding bf4's inferred specs as the "manual" assertions plus the
        // key fix makes p4v report clean only when they suffice.
        let cfg = nat_cfg();
        let res = p4v_check(&cfg, &[]);
        assert!(res.any_bug);
    }

    #[test]
    fn vera_concrete_snapshot_explores_fully() {
        let cfg = nat_cfg();
        let snap = benign_snapshot(&cfg);
        let res = vera_explore(&cfg, Some(&snap), 10_000);
        assert!(!res.exhausted_budget);
        assert!(res.paths > 0);
    }

    #[test]
    fn vera_symbolic_entries_hit_more_bugs_than_benign_snapshot() {
        let cfg = nat_cfg();
        let snap = benign_snapshot(&cfg);
        let concrete = vera_explore(&cfg, Some(&snap), 10_000);
        let symbolic = vera_explore(&cfg, None, 10_000);
        assert!(
            symbolic.bugs_hit.len() >= concrete.bugs_hit.len(),
            "symbolic {:?} vs concrete {:?}",
            symbolic.bugs_hit,
            concrete.bugs_hit
        );
    }
}
