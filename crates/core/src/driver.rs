//! The end-to-end bf4 pipeline (Fig. 3).
//!
//! ```text
//! parse/typecheck → lower (expand tables, instrument) → SSA → optimize
//!   → [slice wrt bug nodes] → reachability conditions → SAT per bug
//!   → Fast-Infer per table → recheck → Infer for uncovered bugs
//!   → multi-table heuristic → recheck
//!   → Fixes for still-reachable bugs → apply keys → re-run once
//!   → emit annotations + fix report
//! ```
//!
//! The [`Report`] carries exactly the per-program quantities of the
//! paper's Table 1 (`#bugs`, bugs after Infer, runtime, bugs after fixes,
//! keys added) plus the ablation metrics of §4.1–§4.2 (instructions
//! before/after slicing, Fast-Infer vs Infer time, spec origins).

use crate::fast_infer::fast_infer;
use crate::fixes::{apply_fixes, fixes_for_bug, Fix, Unfixable};
use crate::infer::{atoms_for_site, infer};
use crate::multi_table::{multi_table_specs, to_table_spec};
use crate::reach::{check_bugs, BugCheckStats, BugStatus, FoundBug, ReachAnalysis};
use crate::specs::{
    ActionDescriptor, AnnotationFile, KeyDescriptor, SpecOrigin, TableDescriptor, TableSpec,
};
use bf4_ir::{lower, BugKind, Cfg, LowerOptions};
use bf4_p4::typecheck::Program;
use bf4_smt::{new_solver, SatResult, Solver, SolverConfig, Term};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Options for a verification run.
#[derive(Clone, Debug)]
pub struct VerifyOptions {
    /// Lowering options (instrumentation toggles, pipeline part).
    pub lower: LowerOptions,
    /// Run the classic optimization pipeline (const/copy propagation, DCE)
    /// after SSA (§4.1 "making verification faster").
    pub optimize: bool,
    /// Slice the CFG with respect to bug nodes before reachability (§4.1).
    pub slicing: bool,
    /// Run Fast-Infer (Algorithm 2) before Infer.
    pub fast_infer: bool,
    /// Run Infer (Algorithm 1) for bugs Fast-Infer leaves uncovered.
    pub infer: bool,
    /// Run the multi-table heuristic.
    pub multi_table: bool,
    /// Run Fixes and re-verify the fixed program.
    pub fixes: bool,
    /// Iteration cap for Algorithm 1.
    pub infer_max_iterations: usize,
    /// Also analyze the egress pipeline (in separation, §4.6) and merge
    /// its results.
    pub include_egress: bool,
    /// Solver backend and resource budget: every SMT query in the pipeline
    /// goes through a governed solver built from this config.
    pub solver: SolverConfig,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            lower: LowerOptions::default(),
            optimize: true,
            slicing: true,
            fast_infer: true,
            infer: true,
            multi_table: true,
            fixes: true,
            infer_max_iterations: 256,
            include_egress: false,
            solver: SolverConfig::default(),
        }
    }
}

/// One pipeline stage that failed or degraded instead of completing.
/// The run as a whole still produces a [`Report`]; these entries say which
/// results are partial and why.
#[derive(Clone, Debug)]
pub struct StageFailure {
    /// Stage name (`frontend`, `find-bugs`, `inference`, `fixes`,
    /// `pipeline` for a panic that escaped a whole program run).
    pub stage: String,
    /// Human-readable cause: budget kind, panic payload, or frontend error.
    pub error: String,
    /// Solver queries issued before the failure (0 when not applicable).
    pub queries_used: u64,
    /// Wall-clock time consumed by the failing stage.
    pub duration: Duration,
}

/// One bug in the final report.
#[derive(Clone, Debug)]
pub struct BugReport {
    /// Bug class.
    pub kind: BugKind,
    /// Description from instrumentation.
    pub description: String,
    /// Source line.
    pub line: u32,
    /// Table whose expansion contains / dominates the bug.
    pub table: Option<String>,
    /// Final status.
    pub status: BugStatus,
}

/// Phase timings.
#[derive(Clone, Debug, Default)]
pub struct Timings {
    /// Frontend + lowering + SSA + optimizations.
    pub transform: Duration,
    /// Reachability-condition construction + per-bug SAT checks.
    pub find_bugs: Duration,
    /// Algorithm 2 across all tables.
    pub fast_infer: Duration,
    /// Algorithm 1 across residual assert points.
    pub infer: Duration,
    /// Multi-table heuristic.
    pub multi_table: Duration,
    /// Fixes + re-verification.
    pub fixes: Duration,
    /// Whole pipeline.
    pub total: Duration,
}

/// Structural metrics (§4.1 slicing ablation).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Instructions in the freshly lowered (instrumented, pre-SSA) CFG.
    pub instrs_lowered: usize,
    /// Instructions in the (optionally optimized) CFG before slicing.
    pub instrs_before_slice: usize,
    /// Instructions kept by the slice.
    pub instrs_after_slice: usize,
    /// Table sites expanded.
    pub table_sites: usize,
    /// Lines of P4 source.
    pub loc: usize,
}

/// The result of verifying one program — one row of Table 1 plus detail.
#[derive(Clone, Debug)]
pub struct Report {
    /// Total bugs found reachable with all table rules possible.
    pub bugs_total: usize,
    /// Bugs still reachable after Infer/Fast-Infer/multi-table annotations.
    pub bugs_after_infer: usize,
    /// Bugs still reachable after applying the proposed fixes (and the
    /// egress-spec special fix).
    pub bugs_after_fixes: usize,
    /// Number of keys added by Fixes.
    pub keys_added: usize,
    /// Tables modified by Fixes.
    pub tables_modified: usize,
    /// Proposed fixes.
    pub fixes: Vec<Fix>,
    /// Whether the egress-spec special fix (drop at pipeline start) was
    /// suggested.
    pub egress_spec_fix: bool,
    /// Per-bug detail.
    pub bugs: Vec<BugReport>,
    /// The emitted annotation artifact.
    pub annotations: AnnotationFile,
    /// Phase timings.
    pub timings: Timings,
    /// Structural metrics.
    pub metrics: Metrics,
    /// Human-readable description of the proposed P4 changes.
    pub fix_description: String,
    /// Bugs the solver could not decide within its resource budget. These
    /// are *included* in `bugs_total`/`bugs_after_fixes` (an undecided bug
    /// is a potential bug, never "no bug"); this count says how many of
    /// those totals are undecided rather than proved.
    pub bugs_undecided: usize,
    /// Stages that failed or ran out of budget; empty for a clean run.
    pub degraded: Vec<StageFailure>,
    /// Observability counters accumulated during this run (solver queries,
    /// retries, cache traffic). Populated by [`verify`] only while
    /// `bf4_obs` metrics collection is enabled — `None` otherwise, so
    /// normalized report output is unaffected by default.
    pub obs_metrics: Option<bf4_obs::MetricsSnapshot>,
}

impl Report {
    /// An empty report representing a run that could not produce results:
    /// everything zero except the recorded failure. Used by
    /// [`verify_isolated`] when the frontend rejects the program or the
    /// pipeline panics.
    pub fn failed(stage: &str, error: String, duration: Duration) -> Report {
        Report {
            bugs_total: 0,
            bugs_after_infer: 0,
            bugs_after_fixes: 0,
            keys_added: 0,
            tables_modified: 0,
            fixes: Vec::new(),
            egress_spec_fix: false,
            bugs: Vec::new(),
            annotations: AnnotationFile::default(),
            timings: Timings {
                total: duration,
                ..Timings::default()
            },
            metrics: Metrics::default(),
            fix_description: String::new(),
            bugs_undecided: 0,
            degraded: vec![StageFailure {
                stage: stage.to_string(),
                error,
                queries_used: 0,
                duration,
            }],
            obs_metrics: None,
        }
    }
}

/// Extract a printable message from a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Verify a program without letting any internal panic escape: a panicking
/// pipeline (or a frontend error) yields a degraded [`Report`] instead of
/// unwinding into the caller. This is what corpus-wide drivers use so one
/// bad program cannot take down a whole batch run.
pub fn verify_isolated(source: &str, options: &VerifyOptions) -> Report {
    let t0 = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| verify(source, options))) {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => {
            bf4_obs::error("core", &format!("frontend rejected program: {e}"));
            Report::failed("frontend", e.to_string(), t0.elapsed())
        }
        Err(payload) => {
            let msg = panic_message(&*payload);
            bf4_obs::error("core", &format!("pipeline panicked: {msg}"));
            Report::failed("pipeline", msg, t0.elapsed())
        }
    }
}

/// Verify a P4 source program through the full bf4 pipeline.
pub fn verify(source: &str, options: &VerifyOptions) -> Result<Report, bf4_p4::Error> {
    let t_total = Instant::now();
    // Metrics are process-global; attributing them to this run via a
    // before/after counter delta is exact only while runs don't overlap.
    // The parallel engine takes the same delta around its joined worker
    // pool, so a single-program engine run attributes identically; only
    // multi-program corpora (overlapping in the pool) leave per-report
    // metrics unset.
    let metrics_before = bf4_obs::metrics_enabled().then(bf4_obs::snapshot);
    let program = bf4_p4::frontend(source)?;
    let solver_cfg = options.solver.clone();
    let factory: &SolverFactory =
        &move || Box::new(new_solver(&solver_cfg)) as Box<dyn Solver>;
    let mut report = verify_program_with(&program, options, source, factory)?;
    if options.include_egress {
        let mut egress_opts = options.clone();
        egress_opts.lower.part = bf4_ir::lower::PipelinePart::Egress;
        egress_opts.include_egress = false;
        let egress_report = verify_program_with(&program, &egress_opts, source, factory)?;
        merge_reports(&mut report, egress_report);
    }
    report.timings.total = t_total.elapsed();
    report.obs_metrics = metrics_before.map(|before| bf4_obs::snapshot().delta_since(&before));
    Ok(report)
}

/// Fold an egress-pipeline report into the ingress report (§4.6: the two
/// pipeline parts are analyzed in separation and their counts summed).
/// Public so corpus drivers other than [`verify`] — notably the parallel
/// engine — can merge per-part reports the same way.
pub fn merge_reports(main: &mut Report, other: Report) {
    main.bugs_total += other.bugs_total;
    main.bugs_after_infer += other.bugs_after_infer;
    main.bugs_after_fixes += other.bugs_after_fixes;
    main.keys_added += other.keys_added;
    main.tables_modified += other.tables_modified;
    main.fixes.extend(other.fixes);
    main.bugs.extend(other.bugs);
    main.annotations.tables.extend(other.annotations.tables);
    main.annotations.specs.extend(other.annotations.specs);
    main
        .annotations
        .unsafe_defaults
        .extend(other.annotations.unsafe_defaults);
    main.metrics.instrs_before_slice += other.metrics.instrs_before_slice;
    main.metrics.instrs_after_slice += other.metrics.instrs_after_slice;
    main.metrics.table_sites += other.metrics.table_sites;
    main.bugs_undecided += other.bugs_undecided;
    main.degraded.extend(other.degraded);
}

/// Build the transformed, optimized (and optionally sliced) CFG.
pub fn build_cfg(
    program: &Program,
    options: &VerifyOptions,
) -> Result<(Cfg, Metrics), bf4_p4::Error> {
    let lowered = lower(program, &options.lower)?;
    let mut cfg = lowered.cfg;
    let instrs_lowered = cfg.num_instrs();
    bf4_ir::ssa::to_ssa(&mut cfg);
    if options.optimize {
        bf4_ir::opt::optimize(&mut cfg);
    }
    let mut metrics = Metrics {
        instrs_lowered,
        instrs_before_slice: cfg.num_instrs(),
        instrs_after_slice: cfg.num_instrs(),
        table_sites: cfg.tables.len(),
        loc: 0,
    };
    if options.slicing {
        // Slice with respect to every bug node *and* the good terminals'
        // support: bug reachability needs the bug-relevant instructions
        // only. (OK formulas for Infer are built on the same sliced graph;
        // the slice keeps all control dependences, preserving reachability
        // conditions for terminals.)
        let roots = cfg.bug_blocks();
        if !roots.is_empty() {
            let info = bf4_ir::slice::compute_slice(&cfg, &roots);
            metrics.instrs_after_slice = info.instrs_after;
            cfg = bf4_ir::slice::apply_slice(&cfg, &info);
        }
    }
    Ok((cfg, metrics))
}

/// Builds the solver that reachability checks, rechecks and the
/// unsafe-default analysis run on. The sequential driver builds governed
/// solvers directly; the parallel engine injects caching wrappers. Infer's
/// direct/dual solvers are *not* built through this (they rely on models
/// and unsat cores, which a result cache cannot answer).
pub type SolverFactory<'a> = dyn Fn() -> Box<dyn Solver> + Sync + 'a;

/// Artifacts of one verification round up to — but not including — the
/// per-bug reachability checks: the transformed CFG, the reachability
/// analysis and the bug list with all statuses still undetermined.
///
/// Produced by [`prepare_round`]; the caller decides how to run the
/// reachability checks (one solver sequentially, or one job per bug in the
/// parallel engine) and then hands everything to [`finish_round`].
pub struct RoundPrep {
    /// Transformed, optimized, sliced CFG.
    pub cfg: Cfg,
    /// Structural metrics of the transformation.
    pub metrics: Metrics,
    /// Reachability conditions over `cfg`.
    pub ra: ReachAnalysis,
    /// Bug nodes found in `cfg`, reachability not yet checked.
    pub bugs: Vec<FoundBug>,
    /// Time spent in `build_cfg`.
    pub transform_time: Duration,
    /// Time spent building the reachability analysis and bug list.
    pub analysis_time: Duration,
}

/// Build everything a verification round needs before any SMT query runs.
pub fn prepare_round(
    program: &Program,
    options: &VerifyOptions,
) -> Result<RoundPrep, bf4_p4::Error> {
    let _sp = bf4_obs::span("core", "prepare");
    let t0 = Instant::now();
    let (cfg, metrics) = build_cfg(program, options)?;
    let transform_time = t0.elapsed();
    let t0 = Instant::now();
    let ra = ReachAnalysis::new(&cfg);
    let bugs = ra.found_bugs(&cfg);
    Ok(RoundPrep {
        cfg,
        metrics,
        ra,
        bugs,
        transform_time,
        analysis_time: t0.elapsed(),
    })
}

/// The degradation entry for undecided reachability checks, if any.
/// `detail` is the solver's last error rendered with [`std::fmt::Display`]
/// (absent when no solver recorded one).
pub fn find_bugs_degradation(
    stats: &BugCheckStats,
    detail: Option<String>,
    queries_used: u64,
    duration: Duration,
) -> Option<StageFailure> {
    if stats.undecided == 0 {
        return None;
    }
    Some(StageFailure {
        stage: "find-bugs".to_string(),
        error: format!(
            "{} bug(s) undecided within the solver budget{}",
            stats.undecided,
            detail.map(|e| format!(" ({e})")).unwrap_or_default()
        ),
        queries_used,
        duration,
    })
}

/// Verification state carried across rounds (round 1: original program;
/// round 2, if fixes were proposed: the fixed program re-verified from
/// scratch — step 2 of §1's loop).
pub struct RoundState {
    /// The program being verified; mutated when fixes are applied.
    pub program: Program,
    /// Options for the current round; `lower.egress_spec_default_drop` is
    /// switched on when the egress-spec special fix is taken.
    pub options: VerifyOptions,
    /// 1-based round counter ([`RoundState::begin_round`] increments).
    pub round: usize,
    /// Total bugs found reachable in round 1.
    pub bugs_total: usize,
    /// Bugs still reachable after inference in round 1.
    pub bugs_after_infer: usize,
    /// Per-bug detail from round 1; statuses refined by round 2.
    pub first_round_bugs: Vec<BugReport>,
    /// Structural metrics from round 1.
    pub metrics: Metrics,
    /// Accumulated stage failures across rounds.
    pub degraded: Vec<StageFailure>,
    /// Fixes proposed in round 1.
    pub fixes: Vec<Fix>,
    /// Whether the egress-spec special fix was taken.
    pub egress_spec_fix: bool,
    /// Human-readable description of the applied fixes.
    pub fix_description: String,
    /// Accumulated phase timings.
    pub timings: Timings,
    /// Non-empty lines of source (becomes `metrics.loc`).
    loc: usize,
    started: Instant,
}

impl RoundState {
    /// Fresh state for verifying `program`.
    pub fn new(program: &Program, options: &VerifyOptions, source: &str) -> RoundState {
        RoundState {
            program: program.clone(),
            options: options.clone(),
            round: 0,
            bugs_total: 0,
            bugs_after_infer: 0,
            first_round_bugs: Vec::new(),
            metrics: Metrics::default(),
            degraded: Vec::new(),
            fixes: Vec::new(),
            egress_spec_fix: false,
            fix_description: String::new(),
            timings: Timings::default(),
            loc: source.lines().filter(|l| !l.trim().is_empty()).count(),
            started: Instant::now(),
        }
    }

    /// Account a freshly prepared round: bumps the round counter, records
    /// transform timing, and adopts the structural metrics on round 1.
    pub fn begin_round(&mut self, prep: &RoundPrep) {
        self.round += 1;
        if self.round == 1 {
            self.metrics = prep.metrics.clone();
            self.metrics.loc = self.loc;
        }
        self.timings.transform += prep.transform_time;
    }
}

/// What the caller's reachability checks over [`RoundPrep::bugs`]
/// produced, for totals and degradation reporting.
pub struct ReachInfo {
    /// Aggregated per-bug check outcomes.
    pub stats: BugCheckStats,
    /// Solver queries the checks issued.
    pub queries_used: u64,
    /// Rendered solver error accompanying an undecided check, if any.
    pub detail: Option<String>,
    /// Wall-clock (or summed per-bug) time of the checks.
    pub duration: Duration,
}

/// What [`finish_round`] decided.
pub enum RoundResult {
    /// Fixes were applied to `state.program`; prepare and run another
    /// round.
    Continue,
    /// Verification finished with this report.
    Done(Box<Report>),
}

/// Everything after the per-bug reachability checks of one round:
/// inference (Fast-Infer, Infer, multi-table), fix proposal (round 1
/// only), the unsafe-default analysis and report assembly.
///
/// `reach` describes the reachability checks the caller already ran over
/// `prep.bugs`; `solver` is the solver they ran on (or a fresh
/// equivalent — every query is a push/assert/check/pop over the solver's
/// base frame, so no assertion state carries over between queries even
/// when the solver keeps an incremental context) and `factory` rebuilds
/// it after a panic.
pub fn finish_round(
    state: &mut RoundState,
    prep: RoundPrep,
    reach: ReachInfo,
    mut solver: Box<dyn Solver>,
    factory: &SolverFactory,
) -> RoundResult {
    let RoundPrep {
        cfg,
        ra,
        mut bugs,
        analysis_time,
        ..
    } = prep;
    let find_bugs_time = reach.duration + analysis_time;
    if state.round == 1 {
        // An undecided bug counts as a potential bug: the total is the
        // conservative over-approximation, never an undercount.
        state.bugs_total = reach.stats.potential();
    }
    if let Some(failure) = find_bugs_degradation(
        &reach.stats,
        reach.detail,
        reach.queries_used,
        find_bugs_time,
    ) {
        bf4_obs::warn("core", &format!("find-bugs degraded: {}", failure.error));
        state.degraded.push(failure);
    }
    state.timings.find_bugs += find_bugs_time;

    // ---- inference (Fast-Infer, Infer, multi-table) ----
    // Isolated: a panic inside inference degrades the run to "no
    // annotations inferred" instead of taking down the whole pipeline.
    let t_inf = Instant::now();
    let sp_inf = bf4_obs::span("core", "inference");
    let inference = catch_unwind(AssertUnwindSafe(|| {
        run_inference(&cfg, &ra, &mut bugs, solver.as_mut(), &state.options)
    }));
    drop(sp_inf);
    let (spec_terms, specs) = match inference {
        Ok((spec_terms, specs, inf_timings, inf_degraded)) => {
            state.timings.fast_infer += inf_timings.0;
            state.timings.infer += inf_timings.1;
            state.timings.multi_table += inf_timings.2;
            for d in &inf_degraded {
                bf4_obs::warn("core", &format!("inference degraded: {}", d.error));
            }
            state.degraded.extend(inf_degraded);
            (spec_terms, specs)
        }
        Err(payload) => {
            let msg = panic_message(&*payload);
            bf4_obs::error("core", &format!("inference panicked: {msg}"));
            state.degraded.push(StageFailure {
                stage: "inference".to_string(),
                error: msg,
                queries_used: solver.queries_used(),
                duration: t_inf.elapsed(),
            });
            // The solver may hold a half-mutated assertion stack;
            // rebuild it before the recheck below.
            solver = factory();
            (Vec::new(), Vec::new())
        }
    };
    let reachable_bugs = recheck(solver.as_mut(), &mut bugs, &spec_terms);
    if state.round == 1 {
        state.bugs_after_infer = reachable_bugs.len();
        state.first_round_bugs = bug_reports(&cfg, &bugs);
    } else {
        // Refine first-round statuses: bugs gone in the fixed program
        // are now controlled.
        for bug in state.first_round_bugs.iter_mut() {
            if bug.status == BugStatus::Uncontrolled {
                let still = reachable_bugs.iter().any(|&ri| {
                    bugs[ri].info.kind == bug.kind && bugs[ri].info.line == bug.line
                });
                if !still {
                    bug.status = BugStatus::Controlled;
                }
            }
        }
    }

    // ---- Fixes (round 1 only) ----
    let run_fixes =
        state.round == 1 && state.options.fixes && !reachable_bugs.is_empty();
    if run_fixes {
        let t0 = Instant::now();
        let _sp = bf4_obs::span("core", "fixes");
        // Isolated like inference: a panic while computing fixes means
        // "no fixes proposed", not a crashed run.
        let proposed = catch_unwind(AssertUnwindSafe(|| {
            let mut fixes: Vec<Fix> = Vec::new();
            let mut egress_spec_fix = false;
            for &bi in &reachable_bugs {
                match fixes_for_bug(&cfg, &bugs[bi]) {
                    Ok(fix) if !fix.keys.is_empty() => {
                        if !fixes.contains(&fix) {
                            fixes.push(fix);
                        }
                    }
                    Ok(_) => {}
                    Err(Unfixable::EgressSpecSpecialCase) => egress_spec_fix = true,
                    Err(_) => {}
                }
            }
            // Merge fixes per table (a bug may propose a subset of
            // another bug's keys for the same table).
            let mut merged: Vec<Fix> = Vec::new();
            for f in fixes {
                if let Some(m) = merged
                    .iter_mut()
                    .find(|m| m.control == f.control && m.table == f.table)
                {
                    for k in f.keys {
                        if !m.keys.contains(&k) {
                            m.keys.push(k);
                        }
                    }
                } else {
                    merged.push(f);
                }
            }
            for m in &mut merged {
                m.keys.sort();
            }
            (merged, egress_spec_fix)
        }));
        match proposed {
            Ok((merged, egress)) => {
                state.fixes = merged;
                state.egress_spec_fix |= egress;
            }
            Err(payload) => {
                let msg = panic_message(&*payload);
                bf4_obs::error("core", &format!("fixes panicked: {msg}"));
                state.degraded.push(StageFailure {
                    stage: "fixes".to_string(),
                    error: msg,
                    queries_used: 0,
                    duration: t0.elapsed(),
                });
                state.fixes = Vec::new();
            }
        }
        state.timings.fixes += t0.elapsed();
        if !state.fixes.is_empty() || state.egress_spec_fix {
            apply_fixes(&mut state.program, &state.fixes);
            state.fix_description =
                crate::fixes::describe_fixes(&state.program, &state.fixes);
            state.options.lower.egress_spec_default_drop = state.egress_spec_fix;
            bf4_obs::info(
                "core",
                &format!(
                    "round {}: {} fix(es) applied, re-verifying",
                    state.round,
                    state.fixes.len()
                ),
            );
            return RoundResult::Continue; // round 2
        }
    }

    // Unsafe default actions: actions that participate in a reachable
    // buggy run of their table (checked per §4.4 when a default rule is
    // set).
    let mut unsafe_defaults: Vec<(String, String)> = Vec::new();
    {
        let _sp = bf4_obs::span("core", "unsafe-defaults");
        let mut s2 = factory();
        for bug in bugs.iter() {
            if matches!(bug.status, BugStatus::Unreachable) {
                continue;
            }
            let Some(site_idx) = bug.assert_point else { continue };
            let site = &cfg.tables[site_idx];
            let qual = format!("{}.{}", site.control, site.table);
            let run_var = Term::var(site.action_run_var.clone(), bf4_smt::Sort::Bv(8));
            for (ai, a) in site.actions.iter().enumerate() {
                if unsafe_defaults.iter().any(|(t, n)| t == &qual && n == &a.name) {
                    continue;
                }
                s2.push();
                s2.assert(&bug.cond);
                s2.assert(&run_var.eq_term(&Term::bv(8, ai as u128)));
                let sat = s2.check() == bf4_smt::SatResult::Sat;
                s2.pop();
                if sat {
                    unsafe_defaults.push((qual.clone(), a.name.clone()));
                }
            }
        }
    }

    // ---- done: assemble the report from this round's artifacts ----
    let bugs_undecided = state
        .first_round_bugs
        .iter()
        .filter(|b| b.status == BugStatus::Undecided)
        .count();
    let keys_added: usize = state.fixes.iter().map(|f| f.keys.len()).sum();
    let tables_modified = state.fixes.iter().filter(|f| !f.keys.is_empty()).count();
    state.timings.total = state.started.elapsed();
    RoundResult::Done(Box::new(Report {
        bugs_total: state.bugs_total,
        bugs_after_infer: state.bugs_after_infer,
        bugs_after_fixes: reachable_bugs.len(),
        keys_added,
        tables_modified,
        fixes: std::mem::take(&mut state.fixes),
        egress_spec_fix: state.egress_spec_fix,
        bugs: std::mem::take(&mut state.first_round_bugs),
        annotations: {
            let mut ann = build_annotations(&cfg, &specs);
            ann.unsafe_defaults = unsafe_defaults;
            ann
        },
        timings: state.timings.clone(),
        metrics: state.metrics.clone(),
        fix_description: std::mem::take(&mut state.fix_description),
        bugs_undecided,
        degraded: std::mem::take(&mut state.degraded),
        obs_metrics: None,
    }))
}

/// Verify a parsed program, constructing every reachability/recheck/
/// unsafe-default solver through `factory`. This is the sequential
/// reference path; the parallel engine drives the same building blocks
/// ([`prepare_round`], [`check_bugs`], [`finish_round`]) under its own
/// scheduling and caching, and the two must produce identical reports
/// (timings aside).
pub fn verify_program_with(
    program: &Program,
    options: &VerifyOptions,
    source: &str,
    factory: &SolverFactory,
) -> Result<Report, bf4_p4::Error> {
    let mut state = RoundState::new(program, options, source);
    loop {
        let prep = prepare_round(&state.program, &state.options)?;
        state.begin_round(&prep);
        let mut prep = prep;
        let t0 = Instant::now();
        let mut solver = factory();
        let reach_stats =
            check_bugs(solver.as_mut(), &mut prep.bugs, &[], BugStatus::Reachable);
        let reach = ReachInfo {
            stats: reach_stats,
            queries_used: solver.queries_used(),
            detail: solver.last_error().map(|e| e.to_string()),
            duration: t0.elapsed(),
        };
        match finish_round(&mut state, prep, reach, solver, factory) {
            RoundResult::Continue => continue,
            RoundResult::Done(report) => return Ok(*report),
        }
    }
}

/// Result of the inference phase: spec terms, packaged specs,
/// `(fast, infer, multi)` timings, and any degradations.
type InferencePhase = (
    Vec<Term>,
    Vec<TableSpec>,
    (Duration, Duration, Duration),
    Vec<StageFailure>,
);

/// Shared inference phase: Fast-Infer on every table, Infer (Algorithm 1)
/// for residual assert points, then the multi-table heuristic. Returns the
/// spec terms, the packaged specs, `(fast, infer, multi)` timings, and any
/// degradations (Infer runs cut short by the solver budget).
fn run_inference(
    cfg: &Cfg,
    ra: &ReachAnalysis,
    bugs: &mut [crate::reach::FoundBug],
    solver: &mut dyn Solver,
    options: &VerifyOptions,
) -> InferencePhase {
    let mut specs: Vec<TableSpec> = Vec::new();
    let mut spec_terms: Vec<Term> = Vec::new();
    let mut degraded: Vec<StageFailure> = Vec::new();

    let t0 = Instant::now();
    if options.fast_infer {
        for (i, site) in cfg.tables.iter().enumerate() {
            let res = fast_infer(cfg, i, &HashSet::new());
            for term in dedup_terms(res.specs) {
                spec_terms.push(term.clone());
                specs.push(TableSpec {
                    control: site.control.clone(),
                    table: site.table.clone(),
                    with_table: None,
                    formula: term,
                    origin: SpecOrigin::FastInfer,
                });
            }
        }
    }
    let fast_time = t0.elapsed();

    let t0 = Instant::now();
    if options.infer {
        let reachable_bugs = recheck(solver, bugs, &spec_terms);
        let mut by_site: Vec<Vec<usize>> = vec![Vec::new(); cfg.tables.len()];
        for &bi in &reachable_bugs {
            // §4.6: egress-spec bugs are special-cased — Infer would block
            // entire actions (any rule whose action leaves egress_spec
            // unset), which is formally safe but destroys intended
            // functionality; they take the drop fix instead.
            if bugs[bi].info.kind == BugKind::EgressSpecNotSet {
                continue;
            }
            if let Some(site) = bugs[bi].assert_point {
                by_site[site].push(bi);
            }
        }
        for (site_idx, bug_idxs) in by_site.iter().enumerate() {
            if bug_idxs.is_empty() {
                continue;
            }
            let site = &cfg.tables[site_idx];
            let atoms = atoms_for_site(site);
            if atoms.is_empty() {
                continue;
            }
            let bug_formula = Term::or_all(
                bug_idxs
                    .iter()
                    .map(|&bi| bugs[bi].cond.clone())
                    .collect::<Vec<_>>(),
            )
            .and(&Term::and_all(spec_terms.clone()));
            let ok_formula = ra
                .ok
                .and(&ra.node_cond[site.entry_block])
                .and(&Term::and_all(spec_terms.clone()));
            let t_site = Instant::now();
            // Infer's counterexample loop consumes models and unsat cores,
            // and an incremental context's model choice depends on what it
            // learned from earlier queries. Pinning these solvers to
            // oneshot keeps inferred annotations — and therefore reports —
            // byte-identical across `--solver-mode`s. The verdict-only
            // reach/recheck paths keep the configured mode.
            let infer_cfg = bf4_smt::SolverConfig {
                mode: bf4_smt::SolverMode::Oneshot,
                ..options.solver.clone()
            };
            let mut direct = new_solver(&infer_cfg);
            let mut dual = new_solver(&infer_cfg);
            let res = infer(
                &mut direct,
                &mut dual,
                &ok_formula,
                &bug_formula,
                &atoms,
                options.infer_max_iterations,
            );
            if res.undecided {
                degraded.push(StageFailure {
                    stage: "inference".to_string(),
                    error: format!(
                        "Infer on table {} stopped early: solver undecided after {} iteration(s)",
                        site.table, res.iterations
                    ),
                    queries_used: direct.stats().queries + dual.stats().queries,
                    duration: t_site.elapsed(),
                });
            }
            if !res.phi.is_true() {
                spec_terms.push(res.phi.clone());
                specs.push(TableSpec {
                    control: site.control.clone(),
                    table: site.table.clone(),
                    with_table: None,
                    formula: res.phi,
                    origin: SpecOrigin::Infer,
                });
            }
        }
    }
    let infer_time = t0.elapsed();

    let t0 = Instant::now();
    if options.multi_table {
        let residual = recheck(solver, bugs, &spec_terms);
        if !residual.is_empty() {
            for m in multi_table_specs(cfg, &spec_terms) {
                spec_terms.push(m.formula.clone());
                specs.push(to_table_spec(cfg, &m));
            }
        }
    }
    let multi_time = t0.elapsed();

    (
        spec_terms,
        specs,
        (fast_time, infer_time, multi_time),
        degraded,
    )
}

/// Re-check reachability of every bug under the inferred specs; returns
/// indices of bugs still *potentially* reachable and updates statuses.
/// `Unknown` is kept in the returned list as [`BugStatus::Undecided`] —
/// a timed-out query must never demote a bug to "controlled".
fn recheck(solver: &mut dyn Solver, bugs: &mut [FoundBug], specs: &[Term]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, bug) in bugs.iter_mut().enumerate() {
        if bug.status == BugStatus::Unreachable {
            continue;
        }
        solver.push();
        solver.assert(&bug.cond);
        for s in specs {
            solver.assert(s);
        }
        let r = solver.check();
        solver.pop();
        match r {
            SatResult::Unsat => bug.status = BugStatus::Controlled,
            SatResult::Sat => {
                bug.status = BugStatus::Uncontrolled;
                out.push(i);
            }
            SatResult::Unknown => {
                bug.status = BugStatus::Undecided;
                out.push(i);
            }
        }
    }
    out
}

fn dedup_terms(terms: Vec<Term>) -> Vec<Term> {
    let mut seen = HashSet::new();
    terms
        .into_iter()
        .filter(|t| seen.insert(format!("{t}")))
        .collect()
}

fn bug_reports(cfg: &Cfg, bugs: &[FoundBug]) -> Vec<BugReport> {
    bugs.iter()
        .map(|b| BugReport {
            kind: b.info.kind,
            description: b.info.description.clone(),
            line: b.info.line,
            table: b.assert_point.map(|s| cfg.tables[s].table.clone()),
            status: b.status,
        })
        .collect()
}

fn build_annotations(cfg: &Cfg, specs: &[TableSpec]) -> AnnotationFile {
    let tables = cfg
        .tables
        .iter()
        .map(|site| TableDescriptor {
            control: site.control.clone(),
            table: site.table.clone(),
            prefix: site.prefix.clone(),
            keys: site
                .keys
                .iter()
                .map(|k| KeyDescriptor {
                    match_kind: k.match_kind.clone(),
                    source: k.source.clone(),
                    sort: k.expr.sort(),
                })
                .collect(),
            actions: site
                .actions
                .iter()
                .map(|a| ActionDescriptor {
                    name: a.name.clone(),
                    num_params: a.param_vars.len(),
                })
                .collect(),
        })
        .collect();
    AnnotationFile {
        tables,
        specs: specs.to_vec(),
        unsafe_defaults: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::NAT_SOURCE;

    #[test]
    fn nat_end_to_end() {
        let report = verify(NAT_SOURCE, &VerifyOptions::default()).unwrap();
        // The running example: bugs exist with all rules possible.
        assert!(report.bugs_total >= 3, "bugs: {:#?}", report.bugs);
        // Infer/Fast-Infer control some but not all (the ttl bug needs a
        // key fix; egress-spec needs the special fix).
        assert!(report.bugs_after_infer < report.bugs_total);
        assert!(report.bugs_after_infer >= 1);
        // After fixes everything is controlled.
        assert_eq!(report.bugs_after_fixes, 0, "{:#?}", report.bugs);
        assert!(report.keys_added >= 1);
        assert!(report.egress_spec_fix);
        assert!(report
            .fixes
            .iter()
            .any(|f| f.table == "ipv4_lpm" && f.keys.contains(&"hdr.ipv4.$valid".to_string())));
        // Annotations round-trip through the textual format.
        let text = report.annotations.to_string();
        let parsed = AnnotationFile::parse(&text).unwrap();
        assert_eq!(parsed.specs.len(), report.annotations.specs.len());
    }

    #[test]
    fn slicing_reduces_instructions() {
        let report = verify(NAT_SOURCE, &VerifyOptions::default()).unwrap();
        assert!(
            report.metrics.instrs_after_slice < report.metrics.instrs_before_slice,
            "{} vs {}",
            report.metrics.instrs_after_slice,
            report.metrics.instrs_before_slice
        );
    }

    #[test]
    fn disabling_inference_leaves_bugs() {
        let opts = VerifyOptions {
            fast_infer: false,
            infer: false,
            multi_table: false,
            fixes: false,
            ..VerifyOptions::default()
        };
        let report = verify(NAT_SOURCE, &opts).unwrap();
        assert_eq!(report.bugs_after_infer, report.bugs_total);
        assert_eq!(report.bugs_after_fixes, report.bugs_total);
    }

    #[test]
    fn exhausted_budget_reports_undecided_never_no_bug() {
        // A budget of zero queries makes every solver call come back
        // Unknown. The report must surface that as undecided/degraded —
        // the one thing it must never do is claim the program clean.
        let opts = VerifyOptions {
            solver: SolverConfig {
                budget: bf4_smt::ResourceBudget {
                    max_queries: Some(0),
                    ..bf4_smt::ResourceBudget::default()
                },
                ..SolverConfig::default()
            },
            ..VerifyOptions::default()
        };
        let report = verify(NAT_SOURCE, &opts).unwrap();
        assert!(report.bugs_undecided > 0, "{report:#?}");
        assert!(report.bugs_total >= report.bugs_undecided);
        assert!(
            report.degraded.iter().any(|f| f.stage == "find-bugs"),
            "degraded: {:?}",
            report.degraded
        );
        // No bug may be demoted to a definite "safe" status by a timeout.
        for bug in &report.bugs {
            assert!(
                !matches!(bug.status, BugStatus::Unreachable | BugStatus::Controlled),
                "undecidable run produced a definite safe verdict: {bug:?}"
            );
        }
    }

    #[test]
    fn verify_isolated_turns_frontend_errors_into_degraded_reports() {
        let report = verify_isolated("control garbage {", &VerifyOptions::default());
        assert_eq!(report.bugs_total, 0);
        assert_eq!(report.degraded.len(), 1);
        assert_eq!(report.degraded[0].stage, "frontend");
        assert!(!report.degraded[0].error.is_empty());
    }

    #[test]
    fn verify_isolated_matches_verify_on_clean_runs() {
        let direct = verify(NAT_SOURCE, &VerifyOptions::default()).unwrap();
        let isolated = verify_isolated(NAT_SOURCE, &VerifyOptions::default());
        assert_eq!(isolated.bugs_total, direct.bugs_total);
        assert_eq!(isolated.bugs_after_fixes, direct.bugs_after_fixes);
        assert!(isolated.degraded.is_empty(), "{:?}", isolated.degraded);
    }

    #[test]
    fn egress_analysis_merges() {
        let opts = VerifyOptions {
            include_egress: true,
            ..VerifyOptions::default()
        };
        let report = verify(NAT_SOURCE, &opts).unwrap();
        // NAT's egress is empty: no extra bugs, but the merge must not
        // lose the ingress results.
        assert!(report.bugs_total >= 3);
    }
}
