//! **Algorithm 2 — Fast-Infer** (§4.2): per-table symbolic execution.
//!
//! Instead of reasoning about whole-program `OK`/`BUG` sets, Fast-Infer
//! explores only the expansion subgraph of one table — from the assert
//! point to the table's exit — assuming any packet can reach the table and
//! any packet leaving it continues as a good run. Every path that ends in
//! a bug and whose path condition mentions only *control variables* (rule
//! contents) yields the necessary precondition `¬pc`.
//!
//! The path condition is rewritten into control variables on the fly:
//! exact-match constraints `key.value == field` let later occurrences of
//! `field` be replaced by the controlled `key.value` (the theorem 7.3/7.4
//! substitution). This is what turns the nat example's validity check
//! `mask == 0 ∨ ipv4.$valid` into the controlled
//! `mask == 0 ∨ key0.value`.
//!
//! The paper proves `φ ⊨ φ_fast` — Fast-Infer may fail where Infer
//! succeeds, never the reverse; the driver runs Fast-Infer first and calls
//! Infer only for uncovered bugs.

use bf4_ir::{BlockId, BlockKind, Cfg, Instr, Terminator};
use bf4_smt::{free_vars, substitute, Term, TermNode};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Upper bound on explored paths per table (defense against pathological
/// expansions; never reached by the corpus).
const MAX_PATHS: usize = 8192;

/// Result of Fast-Infer on one table site.
#[derive(Clone, Debug, Default)]
pub struct FastInferResult {
    /// Necessary preconditions (each is `¬pc` of one all-controlled bug
    /// path), over control variables.
    pub specs: Vec<Term>,
    /// Bug blocks whose every discovered path produced a spec.
    pub covered_bugs: Vec<BlockId>,
    /// Bug blocks reached by at least one path that could *not* be
    /// expressed over control variables.
    pub uncovered_bugs: Vec<BlockId>,
    /// Number of explored paths.
    pub paths: usize,
}

/// Run Fast-Infer for the table site `site_idx` of `cfg` (which must be in
/// SSA form). `extra_controlled` extends the control-variable set — the
/// multi-table heuristic passes the upstream table's controls here.
pub fn fast_infer(
    cfg: &Cfg,
    site_idx: usize,
    extra_controlled: &HashSet<Arc<str>>,
) -> FastInferResult {
    let site = &cfg.tables[site_idx];
    let mut controlled: HashSet<Arc<str>> = site.control_vars().into_iter().collect();
    controlled.extend(extra_controlled.iter().cloned());
    fast_infer_region(cfg, site.entry_block, site.exit_block, &controlled)
}

/// Symbolically execute the subgraph from `entry` to `exit` and derive
/// necessary preconditions over `controlled`. The multi-table heuristic
/// calls this with the *upstream* table's entry and the downstream table's
/// exit so merge copies between the two tables thread the upstream rule's
/// effects into the path conditions (Theorem 7.4).
pub fn fast_infer_region(
    cfg: &Cfg,
    entry: bf4_ir::BlockId,
    exit: bf4_ir::BlockId,
    controlled: &HashSet<Arc<str>>,
) -> FastInferResult {
    let mut result = FastInferResult::default();
    let mut bug_ok_paths: HashMap<BlockId, (usize, usize)> = HashMap::new(); // (covered, uncovered)

    // Iterative DFS over (block, path condition, substitution).
    struct Frame {
        block: BlockId,
        pc: Vec<Term>,
        subst: HashMap<Arc<str>, Term>,
    }
    let mut stack = vec![Frame {
        block: entry,
        pc: Vec::new(),
        subst: HashMap::new(),
    }];

    while let Some(mut frame) = stack.pop() {
        if result.paths >= MAX_PATHS {
            break;
        }
        // Walk instructions: assignments extend the substitution so later
        // conditions are expressed in terms of pre-table state + controls.
        for ins in &cfg.blocks[frame.block].instrs {
            match ins {
                Instr::Assign { var, expr, .. } => {
                    let rewritten = substitute(expr, &frame.subst);
                    frame.subst.insert(var.clone(), rewritten);
                }
                Instr::Havoc { var, .. } => {
                    frame.subst.remove(var);
                }
            }
        }
        match &cfg.blocks[frame.block].term {
            Terminator::End => {
                result.paths += 1;
                if let BlockKind::Bug(_) = &cfg.blocks[frame.block].kind {
                    let pc = Term::and_all(frame.pc.clone());
                    let vars: Vec<Arc<str>> =
                        free_vars(&pc).into_keys().collect();
                    let entry = bug_ok_paths.entry(frame.block).or_insert((0, 0));
                    if vars.iter().all(|v| controlled.contains(v)) {
                        result.specs.push(pc.not());
                        entry.0 += 1;
                    } else {
                        entry.1 += 1;
                    }
                }
                // Accept/Reject/Infeasible/DontCare terminals: path ends.
            }
            Terminator::Jump(t) => {
                if *t == exit {
                    result.paths += 1; // left the table: a good run by assumption
                } else {
                    frame.block = *t;
                    stack.push(frame);
                    continue;
                }
            }
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                let cond = substitute(cond, &frame.subst);
                // True side: harvest exact-match equalities for rewriting,
                // then keep only conjuncts that constrain the *entry* —
                // masked-match conjuncts `(pkt & mask) == (value & mask)`
                // are satisfiable by some packet for every entry, so under
                // the "any packet reaches the assert point" abstraction
                // they impose nothing on the rule and are dropped.
                let mut then_subst = frame.subst.clone();
                let conjuncts = flatten_and(&cond);
                for c in &conjuncts {
                    harvest_equalities(c, controlled, &mut then_subst);
                }
                let mut then_pc = frame.pc.clone();
                for c in conjuncts {
                    let c = substitute(&c, &then_subst);
                    if c.is_true() || is_packet_absorbable(&c, controlled) {
                        continue;
                    }
                    then_pc.push(c);
                }
                if *then_to != exit {
                    stack.push(Frame {
                        block: *then_to,
                        pc: then_pc,
                        subst: then_subst,
                    });
                } else {
                    result.paths += 1;
                }
                let mut else_pc = frame.pc;
                else_pc.push(cond.not());
                if *else_to != exit {
                    stack.push(Frame {
                        block: *else_to,
                        pc: else_pc,
                        subst: frame.subst,
                    });
                } else {
                    result.paths += 1;
                }
            }
        }
    }

    for (bug, (covered, uncovered)) in bug_ok_paths {
        if uncovered == 0 && covered > 0 {
            result.covered_bugs.push(bug);
        } else {
            result.uncovered_bugs.push(bug);
        }
    }
    result.covered_bugs.sort_unstable();
    result.uncovered_bugs.sort_unstable();
    result
}

/// Flatten nested conjunctions into a conjunct list.
fn flatten_and(t: &Term) -> Vec<Term> {
    match t.node() {
        TermNode::And(xs) => xs.iter().flat_map(flatten_and).collect(),
        _ => vec![t.clone()],
    }
}

/// A conjunct is *packet-absorbable* when, for every rule, some packet
/// satisfies it and the involved packet variables are otherwise
/// unconstrained within the table subgraph: masked equality
/// `(pkt-expr & mask) == (value & mask)` and range bounds
/// `value <= pkt-expr` / `pkt-expr <= hi`. Dropping these can at worst
/// forbid rules that no packet would ever hit (empty ranges), which
/// removes no good run.
fn is_packet_absorbable(c: &Term, controlled: &HashSet<Arc<str>>) -> bool {
    let all_controlled = |t: &Term| free_vars(t).keys().all(|v| controlled.contains(v));
    let has_uncontrolled = |t: &Term| free_vars(t).keys().any(|v| !controlled.contains(v));
    match c.node() {
        TermNode::Eq(a, b) => {
            let masked_pkt = |t: &Term| {
                matches!(t.node(), TermNode::Bv(bf4_smt::term::BvOp::And, _, _))
                    && has_uncontrolled(t)
            };
            (masked_pkt(a) && all_controlled(b)) || (masked_pkt(b) && all_controlled(a))
        }
        TermNode::Cmp(op, a, b) => {
            use bf4_smt::term::CmpOp::*;
            matches!(op, Ule | Ult | Uge | Ugt)
                && ((all_controlled(a) && has_uncontrolled(b))
                    || (has_uncontrolled(a) && all_controlled(b)))
        }
        _ => false,
    }
}

/// Extract rewrites `uncontrolled-var → controlled-var` from the equality
/// conjuncts of a branch condition.
fn harvest_equalities(
    cond: &Term,
    controlled: &HashSet<Arc<str>>,
    subst: &mut HashMap<Arc<str>, Term>,
) {
    match cond.node() {
        TermNode::And(xs) => {
            for x in xs {
                harvest_equalities(x, controlled, subst);
            }
        }
        TermNode::Eq(a, b) => {
            if let (TermNode::Var(na, _), TermNode::Var(nb, _)) = (a.node(), b.node()) {
                match (controlled.contains(na), controlled.contains(nb)) {
                    (true, false) => {
                        subst.insert(nb.clone(), a.clone());
                    }
                    (false, true) => {
                        subst.insert(na.clone(), b.clone());
                    }
                    _ => {}
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf4_ir::{lower, LowerOptions};
    use bf4_smt::{SatResult, Solver};

    fn nat_cfg() -> Cfg {
        let program = bf4_p4::frontend(crate::testutil::NAT_SOURCE).unwrap();
        let mut cfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
        bf4_ir::ssa::to_ssa(&mut cfg);
        bf4_ir::opt::optimize(&mut cfg);
        cfg
    }

    #[test]
    fn fast_infer_controls_nat_key_bug() {
        let cfg = nat_cfg();
        let nat_idx = cfg.tables.iter().position(|t| t.table == "nat").unwrap();
        let res = fast_infer(&cfg, nat_idx, &HashSet::new());
        assert!(
            !res.specs.is_empty(),
            "expected a spec for the ternary-mask/validity bug"
        );
        // Every spec is over control variables only.
        let controlled: HashSet<Arc<str>> =
            cfg.tables[nat_idx].control_vars().into_iter().collect();
        for s in &res.specs {
            for (v, _) in free_vars(s) {
                assert!(controlled.contains(&v), "{v} leaked into spec {s}");
            }
        }
        // Under the spec, the invalid-key bug of nat is unreachable.
        let ra = crate::reach::ReachAnalysis::new(&cfg);
        let bugs = ra.found_bugs(&cfg);
        let key_bug = bugs
            .iter()
            .find(|b| {
                b.info.kind == bf4_ir::BugKind::InvalidKeyAccess && b.info.table == Some(nat_idx)
            })
            .expect("nat key bug");
        let mut s = bf4_smt::default_solver();
        s.assert(&key_bug.cond);
        for spec in &res.specs {
            s.assert(spec);
        }
        assert_eq!(s.check(), SatResult::Unsat, "spec does not control the bug");
    }

    #[test]
    fn fast_infer_cannot_control_lpm_ttl_bug() {
        // The set_nhop ttl bug depends on hdr.ipv4.$valid, which no
        // ipv4_lpm key determines — Fast-Infer must not produce a spec
        // that controls it (it is the Fixes algorithm's job, §4.3).
        let cfg = nat_cfg();
        let lpm_idx = cfg.tables.iter().position(|t| t.table == "ipv4_lpm").unwrap();
        let res = fast_infer(&cfg, lpm_idx, &HashSet::new());
        let ra = crate::reach::ReachAnalysis::new(&cfg);
        let bugs = ra.found_bugs(&cfg);
        let ttl_bug = bugs
            .iter()
            .find(|b| {
                b.info.kind == bf4_ir::BugKind::InvalidHeaderAccess
                    && b.info.description.contains("ipv4")
            })
            .expect("ttl bug");
        let mut s = bf4_smt::default_solver();
        s.assert(&ttl_bug.cond);
        for spec in &res.specs {
            s.assert(spec);
        }
        assert_eq!(
            s.check(),
            SatResult::Sat,
            "lpm specs unexpectedly control the ttl bug"
        );
    }

    #[test]
    fn fast_infer_specs_never_exclude_good_runs() {
        // Soundness (Thm 7.3): conjoin all specs with OK; must stay SAT
        // and must not shrink OK on the nat example's good paths.
        let cfg = nat_cfg();
        let ra = crate::reach::ReachAnalysis::new(&cfg);
        let mut all_specs = Vec::new();
        for i in 0..cfg.tables.len() {
            all_specs.extend(fast_infer(&cfg, i, &HashSet::new()).specs);
        }
        // A run that misses every table is good and must survive.
        let mut s = bf4_smt::default_solver();
        s.assert(&ra.ok);
        for spec in &all_specs {
            s.assert(spec);
        }
        assert_eq!(s.check(), SatResult::Sat);
    }
}
