#![warn(missing_docs)]

//! # bf4-core — the bf4 verification engine
//!
//! This crate implements the paper's primary contribution on top of the
//! `bf4-p4` frontend, the `bf4-ir` transformation pipeline and the
//! `bf4-smt` solver layer:
//!
//! * [`reach`] — forward reachability conditions over the acyclic SSA CFG
//!   (the "weakest preconditions" of §4.1) and reachable-bug detection;
//! * [`specs`] — the controller-annotation data model and its SQL-like
//!   textual format (§4.4), shared with the runtime shim;
//! * [`infer`] — **Algorithm 1 (Infer)**: iterative controlled necessary
//!   preconditions via models and unsat cores;
//! * [`fast_infer`] — **Algorithm 2 (Fast-Infer)**: per-table symbolic
//!   execution producing necessary preconditions in milliseconds;
//! * [`multi_table`] — the multi-table heuristic of §4.2;
//! * [`fixes`] — **Algorithm 3 (Fixes)**: data-flow-based inference of
//!   missing table keys, plus the `egress_spec` special-case fix (§4.6);
//! * [`driver`] — the end-to-end pipeline of Fig. 3 (instrument → find
//!   bugs → Fast-Infer → Infer → multi-table → Fixes → re-run), producing
//!   a [`driver::Report`] with the per-program numbers of Table 1;
//! * [`baselines`] — the §5.2 comparisons: a p4v approximation (single
//!   monolithic reachability query) and a Vera approximation (symbolic
//!   execution of a concrete snapshot).

pub mod baselines;
pub mod driver;
pub mod fast_infer;
pub mod fixes;
pub mod infer;
pub mod multi_table;
pub mod reach;
pub mod specs;
#[doc(hidden)]
pub mod testutil;

pub use driver::{
    verify, verify_program_with, ReachInfo, Report, RoundPrep, RoundResult, RoundState,
    SolverFactory, VerifyOptions,
};
pub use reach::{BugCheckStats, BugStatus, FoundBug, ReachAnalysis};
pub use specs::{SpecAtom, TableSpec};
