//! Small embedded P4 programs used by unit tests and doc examples.
//!
//! The full evaluation corpus lives in `bf4-corpus`; this module holds just
//! the paper's running example so the core crate's own tests are
//! self-contained.

/// The paper's running example (Fig. 1): a trimmed `simple_nat` with the
/// three signature bugs — the ternary-mask/invalid-header key bug in
/// `nat`, the unguarded TTL decrement in `ipv4_lpm.set_nhop`, and
/// `egress_spec` left unset on the miss path.
pub const NAT_SOURCE: &str = r#"
    header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
    header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
    struct meta_inner_t { bit<1> do_forward; bit<32> ipv4_sa; bit<32> nhop_ipv4; }
    struct metadata { meta_inner_t meta; }
    struct headers { ethernet_t ethernet; ipv4_t ipv4; }
    parser ParserImpl(packet_in packet, out headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) {
        state start {
            packet.extract(hdr.ethernet);
            transition select(hdr.ethernet.etherType) {
                0x800: parse_ipv4;
                default: accept;
            }
        }
        state parse_ipv4 { packet.extract(hdr.ipv4); transition accept; }
    }
    control ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) {
        action drop_() { mark_to_drop(standard_metadata); }
        action nat_hit_int_to_ext(bit<32> a, bit<9> p) {
            meta.meta.do_forward = 1w1;
            meta.meta.ipv4_sa = a;
            standard_metadata.egress_spec = p;
        }
        action nat_miss_ext_to_int() { meta.meta.do_forward = 1w0; }
        table nat {
            key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
            actions = { drop_; nat_hit_int_to_ext; nat_miss_ext_to_int; }
            default_action = drop_();
        }
        action set_nhop(bit<32> nhop_ipv4, bit<9> port) {
            meta.meta.nhop_ipv4 = nhop_ipv4;
            standard_metadata.egress_spec = port;
            hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
        }
        table ipv4_lpm {
            key = { meta.meta.nhop_ipv4: lpm; }
            actions = { set_nhop; drop_; }
            default_action = drop_();
        }
        apply {
            nat.apply();
            if (meta.meta.do_forward == 1w1) {
                ipv4_lpm.apply();
            }
        }
    }
    control egress(inout headers hdr, inout metadata meta, inout standard_metadata_t standard_metadata) { apply { } }
    control verifyChecksum(inout headers hdr, inout metadata meta) { apply { } }
    control computeChecksum(inout headers hdr, inout metadata meta) { apply { } }
    control DeparserImpl(packet_out packet, in headers hdr) { apply { packet.emit(hdr.ethernet); packet.emit(hdr.ipv4); } }
    V1Switch(ParserImpl(), verifyChecksum(), ingress(), egress(), computeChecksum(), DeparserImpl()) main;
"#;
