//! Controller annotations: the data model bf4 emits at compile time and
//! the runtime shim enforces (§4.4).
//!
//! An annotation file has two sections, in a line-oriented SQL-like
//! syntax:
//!
//! ```text
//! TABLE ingress.nat SITE pcn.nat#0
//!   KEY 0 exact hdr.ipv4.isValid() bool
//!   KEY 1 ternary hdr.ipv4.srcAddr bv32
//!   ACTION 0 drop_ 0
//!   ACTION 1 nat_hit_int_to_ext 2
//! ;
//! ASSERT ON ingress.nat
//!   WHERE (not (and (var pcn.nat#0.hit bool) ...))
//! ;
//! ```
//!
//! `TABLE` records describe the control variables of each table site so
//! the shim can translate a rule insertion into a variable assignment;
//! `ASSERT` records carry one predicate each, which every inserted rule
//! must satisfy. Multi-table assertions name a secondary table whose
//! shadow contents the shim joins against (`WITH`).

use bf4_smt::{parse_sexpr, to_sexpr, Sort, Term};
use std::fmt;

/// Where a spec came from (reported in the evaluation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpecOrigin {
    /// Algorithm 2.
    FastInfer,
    /// Algorithm 1.
    Infer,
    /// The §4.2 multi-table heuristic.
    MultiTable,
}

impl fmt::Display for SpecOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SpecOrigin::FastInfer => "fast-infer",
            SpecOrigin::Infer => "infer",
            SpecOrigin::MultiTable => "multi-table",
        })
    }
}

/// An atom of the paper's predicate set P, kept with a printable name.
#[derive(Clone, Debug)]
pub struct SpecAtom {
    /// Human-readable description (`hit`, `action == drop_`, ...).
    pub name: String,
    /// The atom as a term over control variables.
    pub term: Term,
}

/// Key description within a [`TableDescriptor`].
#[derive(Clone, Debug, PartialEq)]
pub struct KeyDescriptor {
    /// Match kind.
    pub match_kind: String,
    /// Source text of the key expression.
    pub source: String,
    /// Sort of the key.
    pub sort: Sort,
}

/// Action description within a [`TableDescriptor`].
#[derive(Clone, Debug, PartialEq)]
pub struct ActionDescriptor {
    /// Action name.
    pub name: String,
    /// Number of control-plane data parameters.
    pub num_params: usize,
}

/// Everything the shim needs to know about one table site.
#[derive(Clone, Debug, PartialEq)]
pub struct TableDescriptor {
    /// Control name.
    pub control: String,
    /// Table name.
    pub table: String,
    /// Flow-entry variable prefix (`pcn.<table>#<site>`).
    pub prefix: String,
    /// Keys in order.
    pub keys: Vec<KeyDescriptor>,
    /// Actions in order (selector value = index).
    pub actions: Vec<ActionDescriptor>,
}

impl TableDescriptor {
    /// Qualified name `control.table`.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.control, self.table)
    }

    /// Variable name for a key value.
    pub fn key_value_var(&self, i: usize) -> String {
        format!("{}.key{}.value", self.prefix, i)
    }

    /// Variable name for a key mask.
    pub fn key_mask_var(&self, i: usize) -> String {
        format!("{}.key{}.mask", self.prefix, i)
    }

    /// Variable name for the hit flag.
    pub fn hit_var(&self) -> String {
        format!("{}.hit", self.prefix)
    }

    /// Variable name for the rule's action selector.
    pub fn action_var(&self) -> String {
        format!("{}.action", self.prefix)
    }

    /// Variable name for an action data parameter.
    pub fn param_var(&self, action: &str, param_idx: usize, param_name: &str) -> String {
        let _ = param_idx;
        format!("{}.{}.{}", self.prefix, action, param_name)
    }
}

/// One inferred controller annotation.
#[derive(Clone, Debug)]
pub struct TableSpec {
    /// Control name of the primary (asserted-on) table.
    pub control: String,
    /// Primary table name.
    pub table: String,
    /// Secondary table for multi-table assertions.
    pub with_table: Option<String>,
    /// The predicate every rule (or rule combination) must satisfy,
    /// over the control variables of the involved table sites.
    pub formula: Term,
    /// Origin algorithm.
    pub origin: SpecOrigin,
}

impl TableSpec {
    /// Qualified primary table name.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.control, self.table)
    }
}

/// The complete compile-time artifact handed to the shim.
#[derive(Clone, Debug, Default)]
pub struct AnnotationFile {
    /// Table descriptors.
    pub tables: Vec<TableDescriptor>,
    /// Inferred assertions.
    pub specs: Vec<TableSpec>,
    /// `(qualified table, action)` pairs where the action participates in a
    /// reachable bug: the shim must refuse to install it as a default rule
    /// (§4.4 "handling default rules").
    pub unsafe_defaults: Vec<(String, String)>,
}

impl fmt::Display for AnnotationFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tables {
            writeln!(f, "TABLE {} SITE {}", t.qualified(), t.prefix)?;
            for (i, k) in t.keys.iter().enumerate() {
                writeln!(f, "  KEY {i} {} {} {}", k.match_kind, k.source, k.sort)?;
            }
            for (i, a) in t.actions.iter().enumerate() {
                writeln!(f, "  ACTION {i} {} {}", a.name, a.num_params)?;
            }
            writeln!(f, ";")?;
        }
        for (t, a) in &self.unsafe_defaults {
            writeln!(f, "UNSAFE_DEFAULT {t} {a}")?;
        }
        for s in &self.specs {
            write!(f, "ASSERT ON {}", s.qualified())?;
            if let Some(w) = &s.with_table {
                write!(f, " WITH {w}")?;
            }
            writeln!(f, " ORIGIN {}", s.origin)?;
            writeln!(f, "  WHERE {}", to_sexpr(&s.formula))?;
            writeln!(f, ";")?;
        }
        Ok(())
    }
}

impl AnnotationFile {
    /// Parse the textual format back (used by the shim).
    pub fn parse(src: &str) -> Result<AnnotationFile, String> {
        let mut out = AnnotationFile::default();
        let mut lines = src.lines().map(str::trim).peekable();
        while let Some(line) = lines.next() {
            if line.is_empty() || line == ";" {
                continue;
            }
            if let Some(rest) = line.strip_prefix("TABLE ") {
                let mut parts = rest.split_whitespace();
                let qual = parts.next().ok_or("TABLE: missing name")?;
                let (control, table) = qual
                    .split_once('.')
                    .ok_or("TABLE: name must be control.table")?;
                let site_kw = parts.next();
                if site_kw != Some("SITE") {
                    return Err("TABLE: expected SITE".into());
                }
                let prefix = parts.next().ok_or("TABLE: missing prefix")?.to_string();
                let mut desc = TableDescriptor {
                    control: control.to_string(),
                    table: table.to_string(),
                    prefix,
                    keys: vec![],
                    actions: vec![],
                };
                for line in lines.by_ref() {
                    let line = line.trim();
                    if line == ";" {
                        break;
                    }
                    if let Some(rest) = line.strip_prefix("KEY ") {
                        let mut p = rest.split_whitespace();
                        let _i: usize =
                            p.next().ok_or("KEY: idx")?.parse().map_err(|_| "KEY idx")?;
                        let match_kind = p.next().ok_or("KEY: kind")?.to_string();
                        let source = p.next().ok_or("KEY: source")?.to_string();
                        let sort = parse_sort(p.next().ok_or("KEY: sort")?)?;
                        desc.keys.push(KeyDescriptor {
                            match_kind,
                            source,
                            sort,
                        });
                    } else if let Some(rest) = line.strip_prefix("ACTION ") {
                        let mut p = rest.split_whitespace();
                        let _i: usize =
                            p.next().ok_or("ACTION idx")?.parse().map_err(|_| "ACTION idx")?;
                        let name = p.next().ok_or("ACTION name")?.to_string();
                        let num_params: usize = p
                            .next()
                            .ok_or("ACTION params")?
                            .parse()
                            .map_err(|_| "ACTION params")?;
                        desc.actions.push(ActionDescriptor { name, num_params });
                    } else {
                        return Err(format!("unexpected line in TABLE: {line}"));
                    }
                }
                out.tables.push(desc);
            } else if let Some(rest) = line.strip_prefix("UNSAFE_DEFAULT ") {
                let mut p = rest.split_whitespace();
                let t = p.next().ok_or("UNSAFE_DEFAULT table")?.to_string();
                let a = p.next().ok_or("UNSAFE_DEFAULT action")?.to_string();
                out.unsafe_defaults.push((t, a));
            } else if let Some(rest) = line.strip_prefix("ASSERT ON ") {
                let mut parts = rest.split_whitespace();
                let qual = parts.next().ok_or("ASSERT: missing table")?;
                let (control, table) = qual
                    .split_once('.')
                    .ok_or("ASSERT: name must be control.table")?;
                let mut with_table = None;
                let mut origin = SpecOrigin::FastInfer;
                while let Some(kw) = parts.next() {
                    match kw {
                        "WITH" => {
                            with_table =
                                Some(parts.next().ok_or("ASSERT: WITH arg")?.to_string())
                        }
                        "ORIGIN" => {
                            origin = match parts.next().ok_or("ASSERT: ORIGIN arg")? {
                                "fast-infer" => SpecOrigin::FastInfer,
                                "infer" => SpecOrigin::Infer,
                                "multi-table" => SpecOrigin::MultiTable,
                                o => return Err(format!("bad origin {o}")),
                            }
                        }
                        o => return Err(format!("unexpected ASSERT keyword {o}")),
                    }
                }
                let where_line = lines.next().ok_or("ASSERT: missing WHERE")?;
                let formula_src = where_line
                    .trim()
                    .strip_prefix("WHERE ")
                    .ok_or("ASSERT: expected WHERE")?;
                let formula = parse_sexpr(formula_src)?;
                out.specs.push(TableSpec {
                    control: control.to_string(),
                    table: table.to_string(),
                    with_table,
                    formula,
                    origin,
                });
            } else {
                return Err(format!("unexpected line: {line}"));
            }
        }
        Ok(out)
    }
}

fn parse_sort(s: &str) -> Result<Sort, String> {
    if s == "bool" {
        return Ok(Sort::Bool);
    }
    if let Some(w) = s.strip_prefix("bv") {
        return Ok(Sort::Bv(w.parse().map_err(|_| "bad sort")?));
    }
    Err(format!("bad sort {s}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnnotationFile {
        let hit = Term::var("pcn.nat#0.hit", Sort::Bool);
        let kv = Term::var("pcn.nat#0.key0.value", Sort::Bool);
        let mask = Term::var("pcn.nat#0.key1.mask", Sort::Bv(32));
        let bad = hit
            .and(&kv.not())
            .and(&mask.eq_term(&Term::bv(32, 0)).not());
        AnnotationFile {
            tables: vec![TableDescriptor {
                control: "ingress".into(),
                table: "nat".into(),
                prefix: "pcn.nat#0".into(),
                keys: vec![
                    KeyDescriptor {
                        match_kind: "exact".into(),
                        source: "hdr.ipv4.isValid()".into(),
                        sort: Sort::Bool,
                    },
                    KeyDescriptor {
                        match_kind: "ternary".into(),
                        source: "hdr.ipv4.srcAddr".into(),
                        sort: Sort::Bv(32),
                    },
                ],
                actions: vec![
                    ActionDescriptor {
                        name: "drop_".into(),
                        num_params: 0,
                    },
                    ActionDescriptor {
                        name: "nat_hit_int_to_ext".into(),
                        num_params: 2,
                    },
                ],
            }],
            specs: vec![TableSpec {
                control: "ingress".into(),
                table: "nat".into(),
                with_table: None,
                formula: bad.not(),
                origin: SpecOrigin::FastInfer,
            }],
            unsafe_defaults: vec![],
        }
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let text = f.to_string();
        let back = AnnotationFile::parse(&text).unwrap();
        assert_eq!(back.tables, f.tables);
        assert_eq!(back.specs.len(), 1);
        assert!(back.specs[0].formula.alpha_eq(&f.specs[0].formula));
        assert_eq!(back.specs[0].origin, SpecOrigin::FastInfer);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(AnnotationFile::parse("NONSENSE foo").is_err());
        assert!(AnnotationFile::parse("TABLE broken\n;").is_err());
        assert!(AnnotationFile::parse("ASSERT ON a.b ORIGIN weird\n  WHERE true\n;").is_err());
    }

    #[test]
    fn unsafe_default_roundtrip() {
        let mut f = sample();
        f.unsafe_defaults
            .push(("ingress.nat".into(), "nat_miss_ext_to_int".into()));
        let back = AnnotationFile::parse(&f.to_string()).unwrap();
        assert_eq!(back.unsafe_defaults, f.unsafe_defaults);
    }

    #[test]
    fn multi_table_with_clause() {
        let mut f = sample();
        f.specs[0].with_table = Some("ingress.t1".into());
        f.specs[0].origin = SpecOrigin::MultiTable;
        let back = AnnotationFile::parse(&f.to_string()).unwrap();
        assert_eq!(back.specs[0].with_table.as_deref(), Some("ingress.t1"));
        assert_eq!(back.specs[0].origin, SpecOrigin::MultiTable);
    }

    #[test]
    fn descriptor_var_names() {
        let t = &sample().tables[0];
        assert_eq!(t.hit_var(), "pcn.nat#0.hit");
        assert_eq!(t.key_value_var(1), "pcn.nat#0.key1.value");
        assert_eq!(t.key_mask_var(1), "pcn.nat#0.key1.mask");
        assert_eq!(t.param_var("nat_hit_int_to_ext", 0, "a"), "pcn.nat#0.nat_hit_int_to_ext.a");
    }
}
