//! **Algorithm 3 — Fixes** (§4.3): inferring missing table keys.
//!
//! When Infer cannot control a bug (its guarding state is not a function
//! of any key of the dominating table), bf4 proposes adding keys. Working
//! on the SSA CFG, the data-flow lattice of the paper collapses to a
//! backward dependency walk: starting from the branch conditions that
//! guard the bug *after* the assert point, trace each variable back
//! through its (unique) definition; variables defined before the assert
//! point — i.e. available when the table matches — and not already
//! controlled are exactly the missing keys.
//!
//! The `egress_spec`-not-set bug is special-cased per §4.6: its guard is a
//! ghost variable that no table key could meaningfully expose, so the fix
//! is "drop at the beginning of the pipeline" (a lowering option) instead
//! of key addition.

use crate::reach::FoundBug;
use bf4_ir::{BlockId, BugKind, Cfg, Instr};
use bf4_p4::ast::Expr;
use bf4_p4::typecheck::{Program, Type};
use bf4_p4::Span;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A proposed fix: keys to add to a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fix {
    /// Control the table lives in.
    pub control: String,
    /// Table name.
    pub table: String,
    /// Keys to add, as base variable names (`hdr.ipv4.$valid`, `meta.m.x`).
    pub keys: Vec<String>,
}

/// Why a bug admits no key-based fix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Unfixable {
    /// No table site dominates the bug — a genuine dataplane bug.
    NoDominatingTable,
    /// The bug guard depends on state produced *after* the assert point by
    /// a havoc (extern output, register read) — no key can expose it.
    HavocDependency(String),
    /// `egress_spec` bugs take the special drop fix, not keys (§4.6).
    EgressSpecSpecialCase,
}

/// Compute the missing keys that let the dominating table control `bug`.
pub fn fixes_for_bug(cfg: &Cfg, bug: &FoundBug) -> Result<Fix, Unfixable> {
    if bug.info.kind == BugKind::EgressSpecNotSet {
        return Err(Unfixable::EgressSpecSpecialCase);
    }
    let Some(site_idx) = bug.assert_point else {
        return Err(Unfixable::NoDominatingTable);
    };
    let site = &cfg.tables[site_idx];
    let entry = site.entry_block;
    let idom = cfg.dominators();

    // Slice the CFG w.r.t. the bug (line 8 of Alg. 3) — we only need its
    // branch set here; the slice keeps the computed keys small.
    let slice = bf4_ir::slice::compute_slice(cfg, &[bug.block]);

    // Guard conditions after the assert point.
    let mut roots: Vec<Term> = Vec::new();
    use bf4_smt::Term;
    for &b in &slice.needed_branches {
        if Cfg::dominates(&idom, entry, b) {
            if let bf4_ir::Terminator::Branch { cond, .. } = &cfg.blocks[b].term {
                roots.push(cond.clone());
            }
        }
    }

    let controlled: HashSet<Arc<str>> = site.control_vars().into_iter().collect();
    // Base names already matched by existing keys (don't re-add them).
    let mut existing: HashSet<String> = HashSet::new();
    for k in &site.keys {
        for (v, _) in bf4_smt::free_vars(&k.expr) {
            existing.insert(base_name(&v));
        }
    }

    // Definition sites per SSA name (multimap: merge variables have one
    // definition per incoming edge block).
    let mut def_site: HashMap<Arc<str>, Vec<(BlockId, usize)>> = HashMap::new();
    for (b, blk) in cfg.blocks.iter().enumerate() {
        for (i, ins) in blk.instrs.iter().enumerate() {
            def_site.entry(ins.target().clone()).or_default().push((b, i));
        }
    }

    let mut missing: Vec<String> = Vec::new();
    let mut seen: HashSet<Arc<str>> = HashSet::new();
    let mut wl: Vec<Arc<str>> = roots
        .iter()
        .flat_map(|t| bf4_smt::free_vars(t).into_keys())
        .collect();
    while let Some(v) = wl.pop() {
        if !seen.insert(v.clone()) {
            continue;
        }
        if controlled.contains(&v) {
            continue;
        }
        let defs = def_site.get(&v).map(|d| d.as_slice()).unwrap_or(&[]);
        // A variable counts as "defined after the assert point" only if
        // *every* definition is dominated by the table entry; merge
        // variables with any pre-table definition are available at match
        // time.
        let after_entry = !defs.is_empty()
            && defs
                .iter()
                .all(|&(b, _)| Cfg::dominates(&idom, entry, b) && b != entry);
        match defs {
            _ if after_entry => {
                // Defined after the assert point: trace through all defs.
                for &(b, i) in defs {
                    match &cfg.blocks[b].instrs[i] {
                        Instr::Assign { expr, .. } => {
                            wl.extend(bf4_smt::free_vars(expr).into_keys());
                        }
                        Instr::Havoc { var, .. } => {
                            return Err(Unfixable::HavocDependency(var.to_string()));
                        }
                    }
                }
            }
            _ => {
                // Available at the assert point: candidate key. Ghost
                // variables (`$egress_set`, `<stack>.$next`) are excluded —
                // they do not exist in the source program, so a key on them
                // would be the "esoteric and meaningless" fix §4.6 warns
                // about (validity bits `.$valid` are fine: they render as
                // `isValid()`).
                let base = base_name(&v);
                let ghost = base.starts_with('$')
                    || base
                        .rsplit('.')
                        .next()
                        .is_some_and(|c| c.starts_with('$') && c != "$valid");
                if !existing.contains(&base)
                    && !ghost
                    && !base.starts_with("pcn.")
                    && !missing.contains(&base)
                {
                    missing.push(base);
                }
            }
        }
    }
    missing.sort();
    Ok(Fix {
        control: site.control.clone(),
        table: site.table.clone(),
        keys: missing,
    })
}

/// Strip the SSA version suffix.
pub fn base_name(v: &str) -> String {
    match v.rsplit_once('@') {
        Some((base, ver)) if ver.chars().all(|c| c.is_ascii_digit()) => base.to_string(),
        _ => v.to_string(),
    }
}

/// Render a base variable name as P4 source for a key expression, using
/// the parameter names of the control the table belongs to.
///
/// `hdr.ipv4.$valid` → `<hdrparam>.ipv4.isValid()`;
/// `meta.m.x` → `<metaparam>.m.x`.
pub fn key_source(program: &Program, control: &str, base: &str) -> String {
    let ctrl = &program.controls[control];
    let mut param_names = ctrl
        .params
        .iter()
        .filter(|p| {
            !matches!(
                program.resolve_type(&p.ty),
                Ok(Type::Struct(s)) if s == "packet_in" || s == "packet_out"
            )
        })
        .map(|p| p.name.clone());
    let hdr = param_names.next().unwrap_or_else(|| "hdr".into());
    let meta = param_names.next().unwrap_or_else(|| "meta".into());
    let sm = param_names.next().unwrap_or_else(|| "standard_metadata".into());
    let (root, rest) = base.split_once('.').unwrap_or((base, ""));
    let mapped_root = match root {
        "hdr" => hdr,
        "meta" => meta,
        "standard_metadata" => sm,
        other => other.to_string(),
    };
    let path = if rest.is_empty() {
        mapped_root
    } else {
        format!("{mapped_root}.{rest}")
    };
    if let Some(stripped) = path.strip_suffix(".$valid") {
        format!("{stripped}.isValid()")
    } else {
        path
    }
}

/// Apply fixes to a checked program: append the missing keys as exact
/// matches to the named tables. Returns the number of keys added.
pub fn apply_fixes(program: &mut Program, fixes: &[Fix]) -> usize {
    let mut added = 0;
    for fix in fixes {
        let sources: Vec<String> = fix
            .keys
            .iter()
            .map(|k| key_source(program, &fix.control, k))
            .collect();
        let Some(ctrl) = program.controls.get_mut(&fix.control) else {
            continue;
        };
        let Some(table) = ctrl.tables.iter_mut().find(|t| t.name == fix.table) else {
            continue;
        };
        for src in sources {
            if table.keys.iter().any(|(e, _)| render(e) == src) {
                continue;
            }
            table.keys.push((parse_key_expr(&src), "exact".to_string()));
            added += 1;
        }
    }
    added
}

/// Build an AST expression from a rendered key path (dotted members with an
/// optional trailing `.isValid()`).
fn parse_key_expr(src: &str) -> Expr {
    let span = Span::default();
    let (path, is_valid) = match src.strip_suffix(".isValid()") {
        Some(p) => (p, true),
        None => (src, false),
    };
    let mut parts = path.split('.');
    let mut e = Expr::Ident {
        name: parts.next().unwrap().to_string(),
        span,
    };
    for p in parts {
        // numeric components are stack indices
        if p.chars().all(|c| c.is_ascii_digit()) {
            e = Expr::Index {
                base: Box::new(e),
                index: Box::new(Expr::Number {
                    value: p.parse().unwrap(),
                    width: None,
                    span,
                }),
                span,
            };
        } else {
            e = Expr::Member {
                base: Box::new(e),
                member: p.to_string(),
                span,
            };
        }
    }
    if is_valid {
        e = Expr::Call {
            func: Box::new(Expr::Member {
                base: Box::new(e),
                member: "isValid".to_string(),
                span,
            }),
            args: vec![],
            span,
        };
    }
    e
}

fn render(e: &Expr) -> String {
    match e {
        Expr::Ident { name, .. } => name.clone(),
        Expr::Member { base, member, .. } => format!("{}.{member}", render(base)),
        Expr::Index { base, index, .. } => format!("{}[{}]", render(base), render(index)),
        Expr::Call { func, .. } => format!("{}()", render(func)),
        Expr::Number { value, .. } => value.to_string(),
        _ => "?".into(),
    }
}

/// The textual diff of proposed table changes, for the "fixed P4 program"
/// output of Fig. 3.
pub fn describe_fixes(program: &Program, fixes: &[Fix]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for f in fixes {
        if f.keys.is_empty() {
            continue;
        }
        let _ = writeln!(out, "table {}.{} {{", f.control, f.table);
        for k in &f.keys {
            let _ = writeln!(out, "+   {}: exact;", key_source(program, &f.control, k));
        }
        let _ = writeln!(out, "}}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::{check_bugs, BugStatus, ReachAnalysis};
    use bf4_ir::{lower, LowerOptions};

    #[test]
    fn fixes_add_validity_key_to_lpm() {
        let program = bf4_p4::frontend(crate::testutil::NAT_SOURCE).unwrap();
        let mut cfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
        bf4_ir::ssa::to_ssa(&mut cfg);
        bf4_ir::opt::optimize(&mut cfg);
        let ra = ReachAnalysis::new(&cfg);
        let bugs = ra.found_bugs(&cfg);
        let ttl_bug = bugs
            .iter()
            .find(|b| {
                b.info.kind == BugKind::InvalidHeaderAccess && b.info.description.contains("ipv4")
            })
            .expect("ttl bug");
        let fix = fixes_for_bug(&cfg, ttl_bug).expect("fixable");
        assert_eq!(fix.table, "ipv4_lpm");
        assert!(
            fix.keys.contains(&"hdr.ipv4.$valid".to_string()),
            "keys: {:?}",
            fix.keys
        );
        // The paper reports at most 2 keys per table for a single bug.
        assert!(fix.keys.len() <= 2, "keys: {:?}", fix.keys);
    }

    #[test]
    fn egress_spec_bug_special_cased() {
        let program = bf4_p4::frontend(crate::testutil::NAT_SOURCE).unwrap();
        let mut cfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
        bf4_ir::ssa::to_ssa(&mut cfg);
        let ra = ReachAnalysis::new(&cfg);
        let bugs = ra.found_bugs(&cfg);
        let es = bugs
            .iter()
            .find(|b| b.info.kind == BugKind::EgressSpecNotSet)
            .unwrap();
        assert_eq!(fixes_for_bug(&cfg, es), Err(Unfixable::EgressSpecSpecialCase));
    }

    #[test]
    fn applying_fix_makes_bug_controllable() {
        // After adding hdr.ipv4.isValid() to ipv4_lpm, Fast-Infer must be
        // able to control the ttl bug — the end-to-end claim of §4.3.
        let mut program = bf4_p4::frontend(crate::testutil::NAT_SOURCE).unwrap();
        let fix = Fix {
            control: "ingress".into(),
            table: "ipv4_lpm".into(),
            keys: vec!["hdr.ipv4.$valid".into()],
        };
        assert_eq!(apply_fixes(&mut program, &[fix]), 1);
        let mut cfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
        bf4_ir::ssa::to_ssa(&mut cfg);
        bf4_ir::opt::optimize(&mut cfg);
        let lpm_idx = cfg
            .tables
            .iter()
            .position(|t| t.table == "ipv4_lpm")
            .unwrap();
        assert_eq!(cfg.tables[lpm_idx].keys.len(), 2);
        let res = crate::fast_infer::fast_infer(&cfg, lpm_idx, &Default::default());
        let ra = ReachAnalysis::new(&cfg);
        let mut bugs = ra.found_bugs(&cfg);
        let mut z3 = bf4_smt::default_solver();
        let n_controlled = {
            let specs: Vec<bf4_smt::Term> = res.specs.clone();
            check_bugs(&mut z3, &mut bugs, &specs, BugStatus::Uncontrolled);
            bugs.iter()
                .filter(|b| {
                    b.info.kind == BugKind::InvalidHeaderAccess
                        && b.info.description.contains("ipv4")
                        && b.status != BugStatus::Uncontrolled
                })
                .count()
        };
        assert!(n_controlled >= 1, "ttl bug still uncontrolled after fix");
    }

    #[test]
    fn key_source_rendering() {
        let program = bf4_p4::frontend(crate::testutil::NAT_SOURCE).unwrap();
        assert_eq!(
            key_source(&program, "ingress", "hdr.ipv4.$valid"),
            "hdr.ipv4.isValid()"
        );
        assert_eq!(
            key_source(&program, "ingress", "meta.meta.do_forward"),
            "meta.meta.do_forward"
        );
        assert_eq!(base_name("hdr.ipv4.ttl@17"), "hdr.ipv4.ttl");
        assert_eq!(base_name("plain"), "plain");
    }
}
