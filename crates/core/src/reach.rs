//! Forward reachability conditions and reachable-bug detection (§4.1).
//!
//! Working on the acyclic SSA CFG, the condition to reach a node is
//! computed in a single topological pass: each block's instructions
//! contribute equalities (`x@3 == e`), branch edges contribute the branch
//! condition or its negation, and join points take the disjunction of
//! their incoming conditions. Because terms are DAG-shared, the resulting
//! formulas stay linear in program size (Flanagan–Saxe); Z3 then decides
//! `SAT(reach(bug))` per bug node.

use bf4_ir::{BlockId, BlockKind, BugInfo, Cfg, Instr, Terminator};
use bf4_smt::{SatResult, Solver, Sort, Term};
use std::sync::Arc;

/// Outcome of checking one bug node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BugStatus {
    /// Reachable with all table rules possible.
    Reachable,
    /// Unreachable already (dead instrumentation).
    Unreachable,
    /// Unreachable once the inferred annotations are assumed (§4.2:
    /// "controlled").
    Controlled,
    /// Still reachable after annotations and fixes — a dataplane bug the
    /// programmer must fix.
    Uncontrolled,
    /// The solver could not decide reachability within its resource
    /// budget. Reported distinctly — never silently treated as "no bug" —
    /// and counted as a potential bug everywhere totals are formed.
    Undecided,
}

/// Counts from one [`check_bugs`] pass. `Undecided` is deliberately kept
/// separate from `reachable` so callers cannot conflate "solver timed out"
/// with either "bug" or "no bug".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BugCheckStats {
    /// Bugs proved reachable (`Sat`).
    pub reachable: usize,
    /// Bugs the solver could not decide within budget (`Unknown`).
    pub undecided: usize,
}

impl BugCheckStats {
    /// Bugs that must be treated as potentially present: proved reachable
    /// plus undecided.
    pub fn potential(&self) -> usize {
        self.reachable + self.undecided
    }
}

/// A bug node with its metadata and reachability condition.
#[derive(Clone, Debug)]
pub struct FoundBug {
    /// Block id of the bug node.
    pub block: BlockId,
    /// Instrumentation metadata.
    pub info: BugInfo,
    /// Reachability condition (over SSA variables).
    pub cond: Term,
    /// Current status (updated as the pipeline progresses).
    pub status: BugStatus,
    /// Index of the assert point (table site) that dominates this bug, if
    /// any.
    pub assert_point: Option<usize>,
}

/// Reachability conditions for a CFG.
pub struct ReachAnalysis {
    /// Per-block reachability condition (`false` for unreachable blocks).
    pub node_cond: Vec<Term>,
    /// The OK formula: disjunction over good terminals, minus runs through
    /// `dontCare` marks (§4.2).
    pub ok: Term,
    /// Disjunction of reach conditions of `dontCare` marks.
    pub dontcare: Term,
}

impl ReachAnalysis {
    /// Compute reachability conditions for every block.
    pub fn new(cfg: &Cfg) -> ReachAnalysis {
        let order = cfg.topo_order();
        let n = cfg.blocks.len();
        let mut incoming: Vec<Vec<Term>> = vec![Vec::new(); n];
        let mut node_cond: Vec<Term> = vec![Term::ff(); n];
        for &b in &order {
            let cond_in = if b == cfg.entry {
                Term::tt()
            } else {
                Term::or_all(incoming[b].drain(..).collect::<Vec<_>>())
            };
            node_cond[b] = cond_in.clone();
            // Transfer: conjoin instruction equalities.
            let mut parts = vec![cond_in];
            for ins in &cfg.blocks[b].instrs {
                if let Instr::Assign { var, sort, expr } = ins {
                    parts.push(Term::var(var.clone(), *sort).eq_term(expr));
                }
            }
            let out = Term::and_all(parts);
            match &cfg.blocks[b].term {
                Terminator::Jump(t) => incoming[*t].push(out),
                Terminator::Branch {
                    cond,
                    then_to,
                    else_to,
                } => {
                    incoming[*then_to].push(out.and(cond));
                    incoming[*else_to].push(out.and(&cond.not()));
                }
                Terminator::End => {}
            }
        }
        let good = Term::or_all(
            cfg.good_blocks()
                .into_iter()
                .map(|b| node_cond[b].clone())
                .collect::<Vec<_>>(),
        );
        let dontcare = Term::or_all(
            cfg.dontcare_marks
                .iter()
                .map(|&b| node_cond[b].clone())
                .collect::<Vec<_>>(),
        );
        let ok = good.and(&dontcare.not());
        ReachAnalysis {
            node_cond,
            ok,
            dontcare,
        }
    }

    /// Collect all bug nodes with conditions and their dominating assert
    /// points (nearest dominating table-site entry).
    pub fn found_bugs(&self, cfg: &Cfg) -> Vec<FoundBug> {
        let idom = cfg.dominators();
        let reachable: std::collections::HashSet<BlockId> =
            cfg.topo_order().into_iter().collect();
        let mut out = Vec::new();
        for b in cfg.bug_blocks() {
            let BlockKind::Bug(info) = &cfg.blocks[b].kind else {
                unreachable!()
            };
            let assert_point = if !reachable.contains(&b) {
                None
            } else if let Some(t) = info.table {
                Some(t)
            } else {
                // Nearest dominating table entry: walk the dominator chain.
                let mut cur = b;
                let mut found = None;
                loop {
                    if let Some(site) = cfg
                        .tables
                        .iter()
                        .position(|t| t.entry_block == cur)
                    {
                        found = Some(site);
                        break;
                    }
                    match idom.get(&cur) {
                        Some(&d) if d != cur => cur = d,
                        _ => break,
                    }
                }
                found
            };
            out.push(FoundBug {
                block: b,
                info: info.clone(),
                cond: self.node_cond[b].clone(),
                status: BugStatus::Unreachable, // refined by `check_bugs`
                assert_point,
            });
        }
        out
    }
}

/// Decide reachability of each bug, optionally under extra assumptions
/// (inferred specs). Updates `status` in place and returns separate counts
/// of proved-reachable and undecided bugs — an `Unknown` from the solver
/// becomes [`BugStatus::Undecided`], never `reachable_status` and never
/// "unreachable".
pub fn check_bugs(
    solver: &mut dyn Solver,
    bugs: &mut [FoundBug],
    assumptions: &[Term],
    reachable_status: BugStatus,
) -> BugCheckStats {
    let mut stats = BugCheckStats::default();
    for bug in bugs.iter_mut() {
        solver.push();
        solver.assert(&bug.cond);
        for a in assumptions {
            solver.assert(a);
        }
        let r = solver.check();
        solver.pop();
        match r {
            SatResult::Sat => {
                bug.status = reachable_status;
                stats.reachable += 1;
            }
            SatResult::Unknown => {
                bug.status = BugStatus::Undecided;
                stats.undecided += 1;
            }
            SatResult::Unsat => {
                // keep the previous (more specific) status unless this is
                // the first pass
                if reachable_status == BugStatus::Reachable {
                    bug.status = BugStatus::Unreachable;
                }
            }
        }
    }
    stats
}

/// Produce a counterexample model for a bug (assignment over the free
/// variables of its reachability condition).
pub fn bug_model(
    solver: &mut dyn Solver,
    bug: &FoundBug,
    assumptions: &[Term],
) -> Option<bf4_smt::Assignment> {
    solver.push();
    solver.assert(&bug.cond);
    for a in assumptions {
        solver.assert(a);
    }
    let r = solver.check();
    let model = if r == SatResult::Sat {
        let fv: Vec<(Arc<str>, Sort)> = bf4_smt::free_vars(&bug.cond).into_iter().collect();
        solver.model(&fv).ok()
    } else {
        None
    };
    solver.pop();
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf4_ir::{lower, LowerOptions};

    const GUARDED: &str = r#"
        header e_t { bit<8> t; }
        header h_t { bit<8> f; }
        struct headers { e_t e; h_t h; }
        struct meta_t { bit<8> m; }
        parser P(packet_in pkt, out headers hdr, inout meta_t meta, inout standard_metadata_t sm) {
            state start {
                pkt.extract(hdr.e);
                transition select(hdr.e.t) {
                    1: parse_h;
                    default: accept;
                }
            }
            state parse_h { pkt.extract(hdr.h); transition accept; }
        }
        control I(inout headers hdr, inout meta_t meta, inout standard_metadata_t sm) {
            apply {
                sm.egress_spec = 9w1;
                if (hdr.h.isValid()) {
                    meta.m = hdr.h.f;       // safe: guarded access
                }
            }
        }
        control E(inout headers hdr, inout meta_t meta, inout standard_metadata_t sm) { apply {} }
        control V(inout headers hdr, inout meta_t meta) { apply {} }
        control C(inout headers hdr, inout meta_t meta) { apply {} }
        control D(packet_out pkt, in headers hdr) { apply {} }
        V1Switch(P(), V(), I(), E(), C(), D()) main;
    "#;

    fn analyze(src: &str) -> (bf4_ir::Cfg, Vec<FoundBug>, usize) {
        let program = bf4_p4::frontend(src).unwrap();
        let mut cfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
        bf4_ir::ssa::to_ssa(&mut cfg);
        bf4_ir::opt::optimize(&mut cfg);
        let ra = ReachAnalysis::new(&cfg);
        let mut bugs = ra.found_bugs(&cfg);
        let mut solver = bf4_smt::default_solver();
        let n = check_bugs(&mut solver, &mut bugs, &[], BugStatus::Reachable);
        assert_eq!(n.undecided, 0, "test formulas must be decidable");
        (cfg, bugs, n.reachable)
    }

    #[test]
    fn guarded_access_is_safe() {
        let (_cfg, bugs, reachable) = analyze(GUARDED);
        // The guarded field read generates a bug node, but it must be
        // unreachable; egress_spec is always set, so that bug is
        // unreachable too.
        assert_eq!(reachable, 0, "{bugs:?}");
    }

    #[test]
    fn unguarded_access_is_reachable() {
        let src = GUARDED.replace(
            "if (hdr.h.isValid()) {\n                    meta.m = hdr.h.f;       // safe: guarded access\n                }",
            "meta.m = hdr.h.f;",
        );
        let (_cfg, bugs, reachable) = analyze(&src);
        assert_eq!(reachable, 1, "{bugs:?}");
        let bug = bugs
            .iter()
            .find(|b| b.status == BugStatus::Reachable)
            .unwrap();
        assert_eq!(bug.info.kind, bf4_ir::BugKind::InvalidHeaderAccess);
    }

    #[test]
    fn egress_spec_not_set_detected() {
        let src = GUARDED.replace("sm.egress_spec = 9w1;", "");
        let (_cfg, bugs, reachable) = analyze(&src);
        assert!(reachable >= 1);
        assert!(bugs
            .iter()
            .any(|b| b.status == BugStatus::Reachable
                && b.info.kind == bf4_ir::BugKind::EgressSpecNotSet));
    }

    #[test]
    fn counterexample_model_satisfies_condition() {
        let src = GUARDED.replace(
            "if (hdr.h.isValid()) {\n                    meta.m = hdr.h.f;       // safe: guarded access\n                }",
            "meta.m = hdr.h.f;",
        );
        let program = bf4_p4::frontend(&src).unwrap();
        let mut cfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
        bf4_ir::ssa::to_ssa(&mut cfg);
        bf4_ir::opt::optimize(&mut cfg);
        let ra = ReachAnalysis::new(&cfg);
        let bugs = ra.found_bugs(&cfg);
        let mut solver = bf4_smt::default_solver();
        let bug = bugs
            .iter()
            .find(|b| b.info.kind == bf4_ir::BugKind::InvalidHeaderAccess)
            .unwrap();
        let model = bug_model(&mut solver, bug, &[]).expect("model");
        let v = bf4_smt::eval(&bug.cond, &model).unwrap();
        assert_eq!(v, bf4_smt::Value::Bool(true));
    }
}
