//! The multi-table heuristic of §4.2.
//!
//! Single-table preconditions cannot control a bug whose guarding state is
//! written by an *earlier* table. When table `t2`'s keys are a superset of
//! `t1`'s and every run through `t2` also went through `t1`
//! (`reach(t2) ⊨ reach(t1)` — approximated by dominance), the variables
//! `t1`'s actions compute from its own keys and action data are functions
//! of `t2`'s keys too (Theorem 7.4), so Fast-Infer may treat them as
//! controlled. A spec discovered this way mentions both tables' control
//! variables and is enforced by the shim as a rule-combination constraint.

use crate::fast_infer::fast_infer_region;
use crate::specs::{SpecOrigin, TableSpec};
use bf4_ir::{BlockId, Cfg, Instr, Terminator};
use bf4_smt::{free_vars, Term};
use std::collections::HashSet;
use std::sync::Arc;

/// A multi-table spec: primary site, upstream site, predicate.
#[derive(Clone, Debug)]
pub struct MultiTableSpec {
    /// Site index of the table being asserted on.
    pub primary: usize,
    /// Site index of the upstream table whose outputs are borrowed.
    pub upstream: usize,
    /// The inferred predicate (over both sites' control variables and the
    /// upstream outputs).
    pub formula: Term,
}

/// Blocks belonging to a table site's expansion (entry to exit, exclusive).
fn site_region(cfg: &Cfg, site_idx: usize) -> Vec<BlockId> {
    let site = &cfg.tables[site_idx];
    let mut seen = HashSet::new();
    let mut stack = vec![site.entry_block];
    let mut out = Vec::new();
    while let Some(b) = stack.pop() {
        if b == site.exit_block || !seen.insert(b) {
            continue;
        }
        out.push(b);
        match &cfg.blocks[b].term {
            Terminator::Jump(t) => stack.push(*t),
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                stack.push(*then_to);
                stack.push(*else_to);
            }
            Terminator::End => {}
        }
    }
    out
}

/// Variables assigned inside `site`'s expansion whose value is a function
/// of the site's control variables alone (the set `V_t` of Theorem 7.4).
pub fn determined_outputs(cfg: &Cfg, site_idx: usize) -> HashSet<Arc<str>> {
    let controlled: HashSet<Arc<str>> =
        cfg.tables[site_idx].control_vars().into_iter().collect();
    let mut determined: HashSet<Arc<str>> = HashSet::new();
    // Region blocks in topological order so defs are seen before uses.
    let order = cfg.topo_order();
    let region: HashSet<BlockId> = site_region(cfg, site_idx).into_iter().collect();
    for &b in order.iter().filter(|b| region.contains(b)) {
        for ins in &cfg.blocks[b].instrs {
            if let Instr::Assign { var, expr, .. } = ins {
                let deps = free_vars(expr);
                if deps
                    .keys()
                    .all(|v| controlled.contains(v) || determined.contains(v))
                {
                    determined.insert(var.clone());
                }
            }
        }
    }
    determined
}

/// Does `sub`'s key-source set ⊆ `sup`'s key-source set?
fn keys_subset(cfg: &Cfg, sub: usize, sup: usize) -> bool {
    let sup_keys: HashSet<&str> = cfg.tables[sup]
        .keys
        .iter()
        .map(|k| k.source.as_str())
        .collect();
    cfg.tables[sub]
        .keys
        .iter()
        .all(|k| sup_keys.contains(k.source.as_str()))
}

/// Run the heuristic over all dominating table pairs. `already_known`
/// filters out specs Fast-Infer found without upstream help.
pub fn multi_table_specs(cfg: &Cfg, already_known: &[Term]) -> Vec<MultiTableSpec> {
    let idom = cfg.dominators();
    let known: HashSet<String> = already_known.iter().map(|t| format!("{t}")).collect();
    let mut out = Vec::new();
    for t2 in 0..cfg.tables.len() {
        for t1 in 0..cfg.tables.len() {
            if t1 == t2 {
                continue;
            }
            // t1 upstream of t2 (every run through t2 passed t1).
            if !Cfg::dominates(&idom, cfg.tables[t1].entry_block, cfg.tables[t2].entry_block) {
                continue;
            }
            // keys(t1) ⊆ keys(t2).
            if !keys_subset(cfg, t1, t2) {
                continue;
            }
            let mut controlled: HashSet<Arc<str>> =
                cfg.tables[t1].control_vars().into_iter().collect();
            let t1_vars: HashSet<Arc<str>> = controlled.clone();
            controlled.extend(cfg.tables[t2].control_vars());
            let res = fast_infer_region(
                cfg,
                cfg.tables[t1].entry_block,
                cfg.tables[t2].exit_block,
                &controlled,
            );
            for spec in res.specs {
                // Only keep genuinely multi-table specs that are new.
                let uses_upstream = free_vars(&spec).keys().any(|v| t1_vars.contains(v));
                if uses_upstream && !known.contains(&format!("{spec}")) {
                    out.push(MultiTableSpec {
                        primary: t2,
                        upstream: t1,
                        formula: spec,
                    });
                }
            }
        }
    }
    out
}

/// Package a multi-table spec for the annotation file.
pub fn to_table_spec(cfg: &Cfg, m: &MultiTableSpec) -> TableSpec {
    let p = &cfg.tables[m.primary];
    let u = &cfg.tables[m.upstream];
    TableSpec {
        control: p.control.clone(),
        table: p.table.clone(),
        with_table: Some(format!("{}.{}", u.control, u.table)),
        formula: m.formula.clone(),
        origin: SpecOrigin::MultiTable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf4_ir::{lower, LowerOptions};

    /// The paper's §4.2 multi-table snippet: t1 may validate H, t2's
    /// use_H action reads H. With e1=(k1=v, nop) in t1 and
    /// e2=(k1=v, k2=*, use_H) in t2, every packet hitting e2 hits e1,
    /// H stays invalid, and the bug fires — a rule-combination bug.
    const MULTI: &str = r#"
        header h_t { bit<8> f; }
        header k_t { bit<8> k1; bit<8> k2; }
        struct headers { h_t h; k_t k; }
        struct meta_t { bit<8> x; }
        parser P(packet_in pkt, out headers hdr, inout meta_t meta, inout standard_metadata_t sm) {
            state start { pkt.extract(hdr.k); transition accept; }
        }
        control I(inout headers hdr, inout meta_t meta, inout standard_metadata_t sm) {
            action validate_H() { hdr.h.setValid(); hdr.h.f = 8w0; }
            action nop() { }
            table t1 {
                key = { hdr.k.k1: exact; }
                actions = { validate_H; nop; }
                default_action = nop();
            }
            action use_H(bit<9> p) { meta.x = hdr.h.f; sm.egress_spec = p; }
            action skip() { sm.egress_spec = 9w0; }
            table t2 {
                key = { hdr.k.k1: exact; hdr.k.k2: exact; }
                actions = { use_H; skip; }
                default_action = skip();
            }
            apply {
                t1.apply();
                t2.apply();
            }
        }
        control E(inout headers hdr, inout meta_t meta, inout standard_metadata_t sm) { apply {} }
        control V(inout headers hdr, inout meta_t meta) { apply {} }
        control C(inout headers hdr, inout meta_t meta) { apply {} }
        control D(packet_out pkt, in headers hdr) { apply {} }
        V1Switch(P(), V(), I(), E(), C(), D()) main;
    "#;

    #[test]
    fn determined_outputs_track_action_params() {
        let program = bf4_p4::frontend(MULTI).unwrap();
        let mut cfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
        bf4_ir::ssa::to_ssa(&mut cfg);
        let t1 = cfg.tables.iter().position(|t| t.table == "t1").unwrap();
        let det = determined_outputs(&cfg, t1);
        // validate_H sets hdr.h.$valid and hdr.h.f from constants — both
        // determined by t1's rule.
        assert!(
            det.iter().any(|v| v.starts_with("hdr.h.$valid")),
            "determined: {det:?}"
        );
    }

    #[test]
    fn heuristic_requires_key_subset() {
        let program = bf4_p4::frontend(MULTI).unwrap();
        let mut cfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
        bf4_ir::ssa::to_ssa(&mut cfg);
        let t1 = cfg.tables.iter().position(|t| t.table == "t1").unwrap();
        let t2 = cfg.tables.iter().position(|t| t.table == "t2").unwrap();
        assert!(keys_subset(&cfg, t1, t2));
        assert!(!keys_subset(&cfg, t2, t1));
    }

    #[test]
    fn multi_table_spec_found_for_use_h_bug() {
        let program = bf4_p4::frontend(MULTI).unwrap();
        let mut cfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
        bf4_ir::ssa::to_ssa(&mut cfg);
        bf4_ir::opt::optimize(&mut cfg);
        let specs = multi_table_specs(&cfg, &[]);
        assert!(
            !specs.is_empty(),
            "expected a multi-table spec for the use_H bug"
        );
        let t2 = cfg.tables.iter().position(|t| t.table == "t2").unwrap();
        assert!(specs.iter().any(|s| s.primary == t2));
    }
}
