//! **Algorithm 1 — Infer** (§4.2): iterative inference of controlled
//! necessary preconditions.
//!
//! Given the formula `OK` (good runs through the assert point), `BUG` (bad
//! runs dominated by the assert point) and a set `P` of atoms over control
//! variables, the algorithm repeatedly:
//!
//! 1. samples a bad run (a model of `BUG`),
//! 2. abstracts it to the cube of `P`-atoms it satisfies (*assumptions*),
//! 3. asks whether that cube intersects `OK`; if it does not, the solver's
//!    **unsat core** yields a larger region (fewer literals) still disjoint
//!    from `OK`, whose negation is added as a clause of the result;
//!    otherwise the cube is blocked and sampling continues.
//!
//! The result `φ` is a CNF formula over `P` with `OK ⊨ φ` (Theorem 7.2 in
//! the paper's appendix: no good run is ever excluded — safety), which
//! minimizes the bad runs consistent with `φ` on a best-effort basis.

use crate::specs::SpecAtom;
use bf4_ir::TableSite;
use bf4_smt::{eval, SatResult, Solver, Sort, Term, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Outcome of one Infer run.
#[derive(Clone, Debug)]
pub struct InferResult {
    /// The inferred CNF predicate (conjunction of clauses); `true` when no
    /// clause was inferred.
    pub phi: Term,
    /// Clauses as atom-literal lists `(atom index, positive)` — the
    /// negation of each blocked cube.
    pub clauses: Vec<Vec<(usize, bool)>>,
    /// Iterations of the main loop.
    pub iterations: usize,
    /// True if the loop exhausted `BUG` (every bad run is now inconsistent
    /// with `φ` or was blocked as uncontrollable).
    pub converged: bool,
    /// True if the loop stopped because the solver answered `Unknown` (or
    /// failed to produce a model) rather than by convergence or the
    /// iteration cap. The partial `phi` is still sound; callers must
    /// report the degradation instead of presenting the result as
    /// complete.
    pub undecided: bool,
}

/// Generate the syntactic atom set P for a table site (§4.2): `hit`,
/// `action == a` for every action, `key == true` for validity keys, and
/// `mask == 0` for masked keys.
pub fn atoms_for_site(site: &TableSite) -> Vec<SpecAtom> {
    let mut out = Vec::new();
    out.push(SpecAtom {
        name: format!("{}.hit", site.table),
        term: Term::var(site.hit_var.clone(), Sort::Bool),
    });
    let action = Term::var(site.action_var.clone(), Sort::Bv(8));
    for (i, a) in site.actions.iter().enumerate() {
        out.push(SpecAtom {
            name: format!("{}.action == {}", site.table, a.name),
            term: action.eq_term(&Term::bv(8, i as u128)),
        });
    }
    for (i, k) in site.keys.iter().enumerate() {
        let value_sort = k.expr.sort();
        if k.is_validity_key && value_sort == Sort::Bool {
            out.push(SpecAtom {
                name: format!("{}.key[{}] ({}) == true", site.table, i, k.source),
                term: Term::var(k.value_var.clone(), Sort::Bool),
            });
        }
        if let Some(m) = &k.mask_var {
            if let Sort::Bv(w) = value_sort {
                out.push(SpecAtom {
                    name: format!("{}.key[{}] ({}) mask == 0", site.table, i, k.source),
                    term: Term::var(m.clone(), Sort::Bv(w)).eq_term(&Term::bv(w, 0)),
                });
            }
        }
        // boolean exact keys that are not validity calls still yield a
        // usable atom
        if !k.is_validity_key && value_sort == Sort::Bool {
            out.push(SpecAtom {
                name: format!("{}.key[{}] ({}) == true", site.table, i, k.source),
                term: Term::var(k.value_var.clone(), Sort::Bool),
            });
        }
    }
    out
}

/// Run Algorithm 1.
///
/// `direct` must be a fresh solver (it will hold `BUG` plus blocking
/// clauses); `dual` likewise (it will hold `OK`). `max_iterations` bounds
/// the loop; the result is sound regardless (every clause is implied by
/// `OK`), only coverage suffers when the bound is hit.
pub fn infer(
    direct: &mut dyn Solver,
    dual: &mut dyn Solver,
    ok: &Term,
    bug: &Term,
    atoms: &[SpecAtom],
    max_iterations: usize,
) -> InferResult {
    direct.assert(bug);
    dual.assert(ok);

    // Variables needed to evaluate atoms against a model.
    let mut atom_vars: BTreeMap<Arc<str>, Sort> = BTreeMap::new();
    for a in atoms {
        for (v, s) in bf4_smt::free_vars(&a.term) {
            atom_vars.insert(v, s);
        }
    }
    let atom_vars: Vec<(Arc<str>, Sort)> = atom_vars.into_iter().collect();

    let mut phi = Term::tt();
    let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
    let mut iterations = 0;
    let mut converged = false;
    let mut undecided = false;

    loop {
        if iterations >= max_iterations {
            break;
        }
        iterations += 1;
        match direct.check() {
            SatResult::Unsat => {
                converged = true;
                break;
            }
            SatResult::Unknown => {
                // Budget exhausted mid-inference: stop with a sound partial
                // result, but tell the caller loudly.
                undecided = true;
                break;
            }
            SatResult::Sat => {}
        }
        let Ok(model) = direct.model(&atom_vars) else {
            undecided = true;
            break;
        };
        // assumptions: the P-cube of the model (line 6).
        let mut assumptions: Vec<Term> = Vec::with_capacity(atoms.len());
        let mut signs: Vec<bool> = Vec::with_capacity(atoms.len());
        for a in atoms {
            let holds = matches!(eval(&a.term, &model), Ok(Value::Bool(true)));
            signs.push(holds);
            assumptions.push(if holds { a.term.clone() } else { a.term.not() });
        }
        match dual.check_assumptions(&assumptions) {
            SatResult::Unsat => {
                // Expand the cube to the unsat core (line 8) and block it.
                let core = dual.unsat_core();
                let core: Vec<usize> = if core.is_empty() {
                    (0..assumptions.len()).collect()
                } else {
                    core
                };
                let cube = Term::and_all(core.iter().map(|&i| assumptions[i].clone()));
                let clause = cube.not();
                phi = phi.and(&clause);
                clauses.push(core.iter().map(|&i| (i, signs[i])).collect());
                direct.assert(&clause);
            }
            verdict => {
                // `Sat`: the cube contains good runs — block just this
                // cube in the bad-run sampler (line 12) and move on.
                // `Unknown`: treated identically (no clause is added, so
                // soundness holds), but flagged as degraded coverage.
                if verdict == SatResult::Unknown {
                    undecided = true;
                }
                let cube = Term::and_all(assumptions);
                direct.assert(&cube.not());
            }
        }
    }

    InferResult {
        phi,
        clauses,
        iterations,
        converged,
        undecided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's running example abstractly:
    /// control vars: hit (bool), valid_key (bool = entry's isValid key),
    /// mask (bv8); packet var: pkt_valid (bool).
    /// match constraint: valid_key == pkt_valid.
    /// BUG: hit && match && !(mask == 0 || pkt_valid)
    /// OK:  !hit || (hit && match && (mask == 0 || pkt_valid))
    fn nat_formulas() -> (Term, Term, Vec<SpecAtom>) {
        let hit = Term::var("hit", Sort::Bool);
        let valid_key = Term::var("valid_key", Sort::Bool);
        let mask = Term::var("mask", Sort::Bv(8));
        let pkt_valid = Term::var("pkt_valid", Sort::Bool);
        let matches = valid_key.eq_term(&pkt_valid);
        let key_safe = mask.eq_term(&Term::bv(8, 0)).or(&pkt_valid);
        let bug = Term::and_all([hit.clone(), matches.clone(), key_safe.not()]);
        let ok = hit.not().or(&Term::and_all([hit.clone(), matches, key_safe]));
        let atoms = vec![
            SpecAtom {
                name: "hit".into(),
                term: hit,
            },
            SpecAtom {
                name: "valid_key".into(),
                term: valid_key,
            },
            SpecAtom {
                name: "mask == 0".into(),
                term: mask.eq_term(&Term::bv(8, 0)),
            },
        ];
        (ok, bug, atoms)
    }

    #[test]
    fn infer_blocks_all_bad_runs_on_nat_example() {
        let (ok, bug, atoms) = nat_formulas();
        let mut direct = bf4_smt::default_solver();
        let mut dual = bf4_smt::default_solver();
        let res = infer(&mut direct, &mut dual, &ok, &bug, &atoms, 64);
        assert!(res.converged, "did not converge in {} iters", res.iterations);
        assert!(!res.clauses.is_empty());
        // φ must make BUG unreachable:
        let mut s = bf4_smt::default_solver();
        s.assert(&bug);
        s.assert(&res.phi);
        assert_eq!(s.check(), SatResult::Unsat);
        // and must not exclude good runs: OK ∧ ¬φ unsat ⇔ OK ⊨ φ.
        let mut s = bf4_smt::default_solver();
        s.assert(&ok);
        s.assert(&res.phi.not());
        assert_eq!(s.check(), SatResult::Unsat, "φ excludes a good run");
    }

    #[test]
    fn infer_paper_predicate_shape() {
        // The expected predicate is ¬(hit ∧ ¬valid_key ∧ ¬(mask==0)):
        // rules matching invalid headers with non-zero mask are forbidden.
        let (ok, bug, atoms) = nat_formulas();
        let mut direct = bf4_smt::default_solver();
        let mut dual = bf4_smt::default_solver();
        let res = infer(&mut direct, &mut dual, &ok, &bug, &atoms, 64);
        // Check semantic equivalence on all 8 atom valuations.
        let expected = {
            let hit = atoms[0].term.clone();
            let vk = atoms[1].term.clone();
            let m0 = atoms[2].term.clone();
            Term::and_all([hit, vk.not(), m0.not()]).not()
        };
        let mut s = bf4_smt::default_solver();
        s.assert(&res.phi.iff(&expected).not());
        assert_eq!(s.check(), SatResult::Unsat, "phi = {}", res.phi);
        let _ = (ok, bug);
    }

    #[test]
    fn infer_gives_true_when_bug_unreachable() {
        let x = Term::var("x", Sort::Bool);
        let mut direct = bf4_smt::default_solver();
        let mut dual = bf4_smt::default_solver();
        let res = infer(
            &mut direct,
            &mut dual,
            &x.clone(),
            &Term::ff(),
            &[SpecAtom {
                name: "x".into(),
                term: x,
            }],
            16,
        );
        assert!(res.converged);
        assert!(res.phi.is_true());
    }

    #[test]
    fn infer_never_excludes_good_runs_when_uncoverable() {
        // BUG and OK overlap on every atom cube: nothing can be inferred,
        // but the loop must still terminate without harming OK.
        let hit = Term::var("hit", Sort::Bool);
        let secret = Term::var("secret", Sort::Bv(4)); // not an atom var
        let bug = hit.clone().and(&secret.eq_term(&Term::bv(4, 5)));
        let ok = hit.clone().and(&secret.eq_term(&Term::bv(4, 5)).not());
        let atoms = vec![SpecAtom {
            name: "hit".into(),
            term: hit,
        }];
        let mut direct = bf4_smt::default_solver();
        let mut dual = bf4_smt::default_solver();
        let res = infer(&mut direct, &mut dual, &ok, &bug, &atoms, 64);
        assert!(res.converged);
        // Nothing controllable: φ must not constrain hit.
        let mut s = bf4_smt::default_solver();
        s.assert(&ok);
        s.assert(&res.phi.not());
        assert_eq!(s.check(), SatResult::Unsat);
    }
}
