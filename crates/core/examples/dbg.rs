use bf4_core::driver::{verify, VerifyOptions};
fn main() {
    for name in ["07-MultiProtocol", "fabric_switch"] {
        let p = bf4_corpus::by_name(name).unwrap();
        let r = verify(p.source, &VerifyOptions::default()).unwrap();
        println!("== {name}: total={} infer={} fixes={}", r.bugs_total, r.bugs_after_infer, r.bugs_after_fixes);
        for b in &r.bugs {
            if b.status == bf4_core::BugStatus::Uncontrolled {
                println!("  UNCONTROLLED {:?} line {} table {:?}: {}", b.kind, b.line, b.table, b.description);
            }
        }
        for f in &r.fixes { println!("  fix {}.{} += {:?}", f.control, f.table, f.keys); }
    }
}
